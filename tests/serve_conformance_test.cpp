// Fuzzed-chunking conformance: every seeded random chunking of a stream —
// including empty chunks and 1-byte chunks — must yield byte-identical
// matches (after ac::normalize_matches) to a single-shot Engine::scan of
// the concatenated text, across all eight oracle workload families.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ac/chunking.h"
#include "ac/serial_matcher.h"
#include "oracle/workload_gen.h"
#include "serve/service.h"
#include "util/rng.h"

namespace acgpu::serve {
namespace {

constexpr std::uint64_t kSeed = 0x5e55104'5e55104ULL;

ServeOptions conformance_options(Rng& rng, pipeline::KernelVariant variant) {
  ServeOptions opt;
  opt.engine.variant = variant;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  opt.engine.streams = 1 + static_cast<std::uint32_t>(rng.next_below(3));
  opt.engine.batch_bytes = 1 + rng.next_below(4096);
  // Small service bounds so coalescing and auto-flush both fire mid-run.
  opt.max_queue_chunks = 2 + static_cast<std::uint32_t>(rng.next_below(15));
  opt.coalesce_bytes = 1 + rng.next_below(2048);
  opt.admission = AdmissionPolicy::kAutoFlush;
  return opt;
}

/// The kernels need a per-thread chunk that is a multiple of 4 and strictly
/// larger than the overlap window.
std::uint32_t legal_chunk_bytes(const ac::Dfa& dfa) {
  const std::uint32_t overlap = ac::required_overlap(dfa.max_pattern_length());
  return (std::max<std::uint32_t>(32, overlap + 1) + 3) / 4 * 4;
}

/// Single-shot ground truth: Engine::scan over the whole text (the exact
/// comparison ISSUE requires), via the host DFA when the one-shot device
/// buffer overflows — the two are cross-validated by the oracle suite.
std::vector<ac::Match> single_shot(const oracle::CompiledWorkload& w,
                                   const EngineOptions& engine_opt) {
  EngineOptions opt = engine_opt;
  opt.match_capacity = 1024;
  DeviceOptions dopt;
  dopt.gpu = opt.gpu;
  dopt.memory_bytes = opt.device_memory_bytes;
  auto device = Device::create(dopt);
  ACGPU_CHECK(device.is_ok(), device.status().to_string());
  auto engine = Engine::create(device.value(), w.patterns(), opt);
  if (engine.is_ok()) {
    auto scan = engine.value().scan(w.text());
    if (scan.is_ok() && !scan.value().overflowed) {
      auto out = std::move(scan.value().matches);
      ac::normalize_matches(out);
      return out;
    }
  }
  auto out = ac::find_all(w.dfa(), w.text());
  ac::normalize_matches(out);
  return out;
}

/// Streams the workload's text through a fresh service using salt-derived
/// random slices (empty, 1-byte, small, packet-sized) and returns the
/// normalized matches.
std::vector<ac::Match> streamed(const oracle::CompiledWorkload& w,
                                std::uint64_t salt,
                                pipeline::KernelVariant variant) {
  Rng rng(derive_seed(salt, 21));
  ServeOptions opt = conformance_options(rng, variant);
  opt.engine.chunk_bytes = legal_chunk_bytes(w.dfa());
  auto service = StreamService::create(w.patterns(), opt);
  EXPECT_TRUE(service.is_ok()) << service.status().to_string();
  StreamService& srv = service.value();
  const SessionId id = srv.open().value();

  const std::string_view text = w.text();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t len = 0;
    switch (rng.next_below(5)) {
      case 0: len = 0; break;                                // empty chunk
      case 1: len = 1; break;                                // 1-byte chunk
      case 2: len = 1 + rng.next_below(16); break;
      case 3: len = 1 + rng.next_below(512); break;
      default: len = 1 + rng.next_below(64u << 10); break;   // up to 64KB
    }
    len = std::min(len, text.size() - pos);
    const Status s = srv.feed(id, text.substr(pos, len));
    EXPECT_TRUE(s.is_ok()) << s.to_string();
    pos += len;
  }
  EXPECT_TRUE(srv.drain().is_ok());
  auto out = srv.poll(id).value();
  ac::normalize_matches(out);
  return out;
}

class ServeFuzzedChunking
    : public ::testing::TestWithParam<pipeline::KernelVariant> {};

TEST_P(ServeFuzzedChunking, MatchesSingleShotAcrossAllWorkloadFamilies) {
  const pipeline::KernelVariant variant = GetParam();
  const std::size_t families = oracle::workload_family_count();
  ASSERT_GE(families, 8u);
  for (std::uint64_t family = 0; family < families; ++family) {
    const oracle::CompiledWorkload w(oracle::generate_workload(kSeed, family));
    EngineOptions ref_opt;
    ref_opt.variant = variant;
    ref_opt.mode = gpusim::SimMode::Functional;
    ref_opt.gpu.num_sms = 4;
    ref_opt.device_memory_bytes = 64u << 20;
    ref_opt.threads_per_block = 64;
    ref_opt.chunk_bytes = legal_chunk_bytes(w.dfa());
    const auto expected = single_shot(w, ref_opt);
    for (std::uint64_t salt = 0; salt < 3; ++salt)
      EXPECT_EQ(streamed(w, derive_seed(family, salt), variant), expected)
          << oracle::workload_family_name(family) << " salt=" << salt;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ServeFuzzedChunking,
                         ::testing::Values(pipeline::KernelVariant::kShared,
                                           pipeline::KernelVariant::kGlobalOnly,
                                           pipeline::KernelVariant::kPfac),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case pipeline::KernelVariant::kShared: return "Shared";
                             case pipeline::KernelVariant::kGlobalOnly: return "GlobalOnly";
                             case pipeline::KernelVariant::kPfac: return "Pfac";
                           }
                           return "Unknown";
                         });

TEST(ServeFuzzedChunkingEdge, AllOneByteChunksOnAdversarialOverlaps) {
  // Byte-at-a-time is the worst case: every match longer than one byte
  // spans a boundary and must come from the continuation alone.
  const oracle::CompiledWorkload w(oracle::Workload{
      "overlap", {"aa", "aaa", "aaaa", "ab", "ba"}, std::string(512, 'a') + "b" +
                                                        std::string(256, 'a')});
  auto expected = ac::find_all(w.dfa(), w.text());
  ac::normalize_matches(expected);

  Rng rng(7);
  ServeOptions opt = conformance_options(rng, pipeline::KernelVariant::kShared);
  opt.engine.chunk_bytes = legal_chunk_bytes(w.dfa());
  StreamService srv = StreamService::create(w.patterns(), opt).value();
  const SessionId id = srv.open().value();
  for (char ch : w.raw().text)
    ASSERT_TRUE(srv.feed(id, std::string_view(&ch, 1)).is_ok());
  ASSERT_TRUE(srv.drain().is_ok());
  auto got = srv.poll(id).value();
  ac::normalize_matches(got);
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace acgpu::serve
