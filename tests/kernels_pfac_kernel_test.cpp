#include "kernels/pfac_kernel.h"

#include <gtest/gtest.h>

#include "ac/naive_matcher.h"
#include "kernels/ac_kernel.h"
#include "workload/markov_corpus.h"

namespace acgpu::kernels {
namespace {

struct PfacFixture {
  gpusim::GpuConfig cfg;
  gpusim::DeviceMemory mem;
  ac::PatternSet patterns;
  ac::PfacAutomaton pfac;
  DevicePfac dpfac;
  gpusim::DevAddr text_addr;
  std::string text;

  PfacFixture(std::vector<std::string> pats, std::string text_in)
      : cfg(gpusim::GpuConfig::gtx285()),
        mem(64 << 20),
        patterns(std::move(pats)),
        pfac(patterns),
        dpfac(mem, pfac),
        text_addr(0),
        text(std::move(text_in)) {
    cfg.num_sms = 4;
    text_addr = upload_text(mem, text);
  }

  PfacLaunchOutcome run(std::uint32_t tpb = 64) {
    PfacLaunchSpec spec;
    spec.threads_per_block = tpb;
    spec.sim.mode = gpusim::SimMode::Functional;
    const std::size_t mark = mem.mark();
    auto out = run_pfac_kernel(cfg, mem, dpfac, text_addr, text.size(), spec);
    mem.release(mark);
    return out;
  }

  std::vector<ac::Match> expected() const {
    return ac::find_all_naive(patterns, text);
  }
};

TEST(PfacKernel, MatchesNaiveOnPaperExample) {
  PfacFixture f({"he", "she", "his", "hers"}, "ushers and sheep hide his herbs");
  const auto out = f.run();
  EXPECT_EQ(out.matches.matches, f.expected());
  EXPECT_EQ(out.threads, f.text.size());
}

TEST(PfacKernel, OverlappingMatches) {
  PfacFixture f({"aa", "aaa"}, std::string(200, 'a'));
  PfacLaunchSpec spec;
  spec.sim.mode = gpusim::SimMode::Functional;
  spec.match_capacity = 4;
  const auto out = run_pfac_kernel(f.cfg, f.mem, f.dpfac, f.text_addr,
                                   f.text.size(), spec);
  EXPECT_EQ(out.matches.matches, f.expected());
}

TEST(PfacKernel, EnglishCorpus) {
  const std::string corpus = workload::make_corpus(10000, 21);
  PfacFixture f({"the", "and", "tion", "er"}, corpus);
  const auto out = f.run(128);
  EXPECT_EQ(out.matches.matches, f.expected());
}

TEST(PfacKernel, ThreadsDieQuicklyOnRarePatterns) {
  const std::string corpus = workload::make_corpus(20000, 22);
  PfacFixture f({"zzzzqqqq"}, corpus);
  const auto out = f.run(128);
  EXPECT_TRUE(out.matches.matches.empty());
  // Nearly every PFAC thread dies on its first byte, so the per-thread
  // instruction count must be far below max_pattern_length iterations.
  const double instrs_per_thread =
      static_cast<double>(out.sim.metrics.warp_instructions) * 32.0 /
      static_cast<double>(out.threads);
  EXPECT_LT(instrs_per_thread, 60.0);
}

TEST(PfacKernel, FirstStepLoadsCoalescePerfectly) {
  const std::string corpus = workload::make_corpus(8192, 23);
  PfacFixture f({"zzzzqqqq"}, corpus);  // all threads die at step 1
  const auto out = f.run(128);
  // One byte-load per warp covering 32 consecutive bytes: ~1 transaction
  // per request (vs 16 for the chunked global-only kernel).
  EXPECT_LT(out.sim.metrics.avg_transactions_per_request(), 2.0);
}

TEST(PfacKernel, MatchEndsReportedConsistently) {
  PfacFixture f({"abc", "bc", "c"}, "xabcx");
  const auto out = f.run();
  // All three patterns end at index 3.
  ASSERT_EQ(out.matches.matches.size(), 3u);
  for (const auto& m : out.matches.matches) EXPECT_EQ(m.end, 3u);
}

}  // namespace
}  // namespace acgpu::kernels
