// The content-hash-keyed tune cache and the offline autotuner: hash
// invalidation on any dictionary/chip change, the on-disk round trip with
// deterministic bytes, malformed-input tolerance (misses, never errors),
// and the tune-once-replay-forever contract.
#include "dispatch/autotuner.h"
#include "dispatch/tune_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ac/pattern_set.h"
#include "dispatch/signature.h"
#include "pipeline/device.h"
#include "pipeline/engine.h"

namespace acgpu::dispatch {
namespace {

std::string temp_path(const char* leaf) {
  return testing::TempDir() + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(DispatchTuneCache, HashChangesWithAnyPatternOrSaltEdit) {
  const ac::PatternSet a({"he", "she", "hers"});
  const ac::PatternSet b({"he", "she", "herz"});  // one byte differs
  EXPECT_EQ(dictionary_hash(a), dictionary_hash(ac::PatternSet({"he", "she", "hers"})));
  EXPECT_NE(dictionary_hash(a), dictionary_hash(b));
  EXPECT_NE(dictionary_hash(a), dictionary_hash(a, "gtx480"));
}

TEST(DispatchTuneCache, InsertFindMissSemantics) {
  TuneCache cache;
  EXPECT_TRUE(cache.empty());
  TunedParams params;
  params.threads_per_block = 128;
  params.streams = 4;
  params.gbps = 2.5;
  cache.insert(0xabcd, "s20.p2.l2.d0.bulk", params);
  ASSERT_TRUE(cache.find(0xabcd, "s20.p2.l2.d0.bulk").has_value());
  EXPECT_EQ(*cache.find(0xabcd, "s20.p2.l2.d0.bulk"), params);
  EXPECT_FALSE(cache.find(0xabce, "s20.p2.l2.d0.bulk").has_value());
  EXPECT_FALSE(cache.find(0xabcd, "s21.p2.l2.d0.bulk").has_value());
}

TEST(DispatchTuneCache, DiskRoundTripPreservesEntriesAndIsDeterministic) {
  const std::string path = temp_path("acgpu_tune_roundtrip.txt");
  TuneCache cache;
  TunedParams p1{.threads_per_block = 128, .chunk_bytes = 4096,
                 .pool_depth = 4, .streams = 4, .split_readback = false,
                 .gbps = 1.5};
  TunedParams p2{.threads_per_block = 256, .chunk_bytes = 0,
                 .pool_depth = 0, .streams = 2, .split_readback = true,
                 .gbps = 3.25};
  cache.insert(0x1111, "s20.p2.l2.d0.bulk", p1);
  cache.insert(0x2222, "s12.p2.l2.d0.sess", p2);
  ASSERT_TRUE(cache.save(path).is_ok());
  const std::string first = slurp(path);
  ASSERT_TRUE(cache.save(path).is_ok());
  EXPECT_EQ(first, slurp(path)) << "save() must be byte-deterministic";

  TuneCache loaded;
  ASSERT_TRUE(loaded.load(path).is_ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(*loaded.find(0x1111, "s20.p2.l2.d0.bulk"), p1);
  EXPECT_EQ(*loaded.find(0x2222, "s12.p2.l2.d0.sess"), p2);
  std::remove(path.c_str());
}

TEST(DispatchTuneCache, LoadMergesOverExistingEntries) {
  const std::string path = temp_path("acgpu_tune_merge.txt");
  TuneCache on_disk;
  on_disk.insert(0x1111, "s20.p2.l2.d0.bulk", TunedParams{});
  ASSERT_TRUE(on_disk.save(path).is_ok());

  TuneCache cache;
  cache.insert(0x2222, "s12.p2.l2.d0.bulk", TunedParams{});
  ASSERT_TRUE(cache.load(path).is_ok());
  EXPECT_EQ(cache.size(), 2u);
  std::remove(path.c_str());
}

TEST(DispatchTuneCache, MissingFileAndGarbageAreMissesNotErrors) {
  TuneCache cache;
  EXPECT_TRUE(cache.load(temp_path("acgpu_tune_does_not_exist.txt")).is_ok());
  EXPECT_TRUE(cache.empty());

  const std::string path = temp_path("acgpu_tune_garbage.txt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "acgpu-tune v1\n"
        << "not-a-hash s1.p1.l1.d0.bulk 256 0 0 2 1 0.0\n"
        << "ffff\n"
        << "\n";
  }
  EXPECT_TRUE(cache.load(path).is_ok());
  EXPECT_TRUE(cache.empty());

  {
    std::ofstream out(path, std::ios::binary);
    out << "acgpu-tune v99\n"
        << "abcd s1.p1.l1.d0.bulk 256 0 0 2 1 0.0\n";
  }
  EXPECT_TRUE(cache.load(path).is_ok());
  EXPECT_TRUE(cache.empty()) << "unknown versions are skipped wholesale";
  std::remove(path.c_str());
}

TEST(DispatchTuneCache, ProbeTextIsDeterministicAndSeeded) {
  const ac::PatternSet patterns({"he", "she", "his", "hers"});
  SignatureBucket bucket;
  bucket.size_class = 14;  // 16 KiB representative size
  const std::string a = make_probe_text(patterns, bucket, 1u << 20, 42);
  const std::string b = make_probe_text(patterns, bucket, 1u << 20, 42);
  const std::string c = make_probe_text(patterns, bucket, 1u << 20, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GE(a.size(), 4u << 10);  // clamped to [4 KiB, max_bytes]
  EXPECT_LE(a.size(), 1u << 20);
  EXPECT_NE(a.find("hers"), std::string::npos)
      << "probe text plants pattern fragments";
}

TEST(DispatchTuneCache, AutotunerTunesOnceThenReplaysFromCache) {
  const ac::PatternSet patterns({"he", "she", "his", "hers"});
  DeviceOptions dev_opt;
  dev_opt.gpu.num_sms = 4;
  dev_opt.memory_bytes = 64u << 20;
  auto device = Device::create(dev_opt);
  ASSERT_TRUE(device.is_ok()) << device.status().to_string();

  EngineOptions base;
  base.threads_per_block = 64;
  Autotuner tuner(device.value(), patterns, base);
  EXPECT_EQ(tuner.dict_hash(),
            dictionary_hash(patterns, chip_salt(dev_opt.gpu)));

  SignatureBucket bucket;
  bucket.size_class = 14;
  bucket.pattern_class = 2;
  bucket.length_class = 2;

  TuneCache cache;
  const TuneBudget budget = TuneBudget::small();
  auto first = tuner.tune(bucket, budget, &cache);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_FALSE(first.value().from_cache);
  EXPECT_GE(first.value().configs_tried, 1u);
  EXPECT_LE(first.value().configs_tried, budget.max_configs);
  EXPECT_GT(first.value().probe_seconds, 0.0);
  EXPECT_EQ(cache.size(), 1u);

  auto second = tuner.tune(bucket, budget, &cache);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().configs_tried, 0u);
  EXPECT_EQ(second.value().params, first.value().params);
}

}  // namespace
}  // namespace acgpu::dispatch
