#include "gpusim/device_memory.h"

#include <gtest/gtest.h>

#include <string>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

/// Defeats constant folding: GCC 12 turns literal out-of-bounds addresses
/// into -Warray-bounds warnings even though the bounds check throws before
/// any access happens.
DevAddr opaque(DevAddr v) {
  volatile DevAddr o = v;
  return o;
}

TEST(DeviceMemory, AllocAligns) {
  DeviceMemory mem(4096);
  const DevAddr a = mem.alloc(10);
  const DevAddr b = mem.alloc(10);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GT(b, a);
}

TEST(DeviceMemory, AllocCustomAlignment) {
  DeviceMemory mem(4096);
  mem.alloc(3, 1);
  const DevAddr b = mem.alloc(8, 64);
  EXPECT_EQ(b % 64, 0u);
}

TEST(DeviceMemory, AllocRejectsNonPowerOfTwoAlign) {
  DeviceMemory mem(1024);
  EXPECT_THROW(mem.alloc(8, 3), Error);
  EXPECT_THROW(mem.alloc(8, 0), Error);
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  DeviceMemory mem(1024);
  mem.alloc(512);
  EXPECT_THROW(mem.alloc(1024), Error);
}

TEST(DeviceMemory, LoadStoreRoundTrip) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(64);
  mem.store_u32(a, 0xdeadbeef);
  EXPECT_EQ(mem.load_u32(a), 0xdeadbeefu);
  mem.store_u8(a + 4, 0x7f);
  EXPECT_EQ(mem.load_u8(a + 4), 0x7f);
  mem.store_i32(a + 8, -12345);
  EXPECT_EQ(mem.load_i32(a + 8), -12345);
}

TEST(DeviceMemory, LittleEndianLayout) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(8);
  mem.store_u32(a, 0x04030201);
  EXPECT_EQ(mem.load_u8(a + 0), 1);
  EXPECT_EQ(mem.load_u8(a + 1), 2);
  EXPECT_EQ(mem.load_u8(a + 2), 3);
  EXPECT_EQ(mem.load_u8(a + 3), 4);
}

TEST(DeviceMemory, CopyInOut) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(16);
  const char src[] = "hello, device!!";
  mem.copy_in(a, src, sizeof src);
  char dst[sizeof src] = {};
  mem.copy_out(dst, a, sizeof src);
  EXPECT_STREQ(dst, src);
}

TEST(DeviceMemory, FillSetsBytes) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(8);
  mem.fill(a, 0xab, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(mem.load_u8(a + i), 0xab);
}

TEST(DeviceMemory, BoundsChecked) {
  DeviceMemory mem(64);
  EXPECT_THROW(mem.load_u32(opaque(62)), Error);
  EXPECT_THROW(mem.store_u8(opaque(64), 1), Error);
  EXPECT_THROW(mem.load_u8(opaque(100)), Error);
}

TEST(DeviceMemory, WordAccessNearTheUpperBoundary) {
  // A 4-byte access fits up to capacity-4 and must fail for every start in
  // (capacity-4, capacity] — including capacity itself, where a naive
  // `a < capacity` check would still pass.
  DeviceMemory mem(64);
  EXPECT_NO_THROW(mem.store_u32(60, 0x01020304));
  EXPECT_EQ(mem.load_u32(60), 0x01020304u);
  for (const DevAddr a : {DevAddr{61}, DevAddr{62}, DevAddr{63}, DevAddr{64}}) {
    EXPECT_THROW(mem.load_u32(opaque(a)), Error) << "addr " << a;
    EXPECT_THROW(mem.store_u32(opaque(a), 1), Error) << "addr " << a;
  }
  EXPECT_NO_THROW(mem.load_u8(63));
  EXPECT_THROW(mem.load_u8(opaque(64)), Error);
}

TEST(DeviceMemory, BoundsDiagnosticNamesTheRangeAndCapacity) {
  DeviceMemory mem(64);
  try {
    mem.load_u32(opaque(63));
    FAIL() << "expected an out-of-bounds error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[63, 67)"), std::string::npos) << what;
    EXPECT_NE(what.find("capacity 64"), std::string::npos) << what;
  }
}

TEST(DeviceMemory, RawViewIsBoundsCheckedToo) {
  DeviceMemory mem(64);
  EXPECT_NO_THROW(mem.raw(0, 64));
  EXPECT_THROW(mem.raw(opaque(1), 64), Error);
  EXPECT_THROW(mem.raw(opaque(64), 1), Error);
}

TEST(DeviceMemory, MarkReleaseReusesSpace) {
  DeviceMemory mem(1024);
  mem.alloc(128);
  const std::size_t m = mem.mark();
  const DevAddr a = mem.alloc(256);
  mem.release(m);
  const DevAddr b = mem.alloc(256);
  EXPECT_EQ(a, b);
}

TEST(DeviceMemory, ReleaseAboveMarkThrows) {
  DeviceMemory mem(1024);
  const std::size_t m = mem.mark();
  EXPECT_THROW(mem.release(m + 1), Error);
}

TEST(DeviceMemory, ZeroCapacityThrows) {
  EXPECT_THROW(DeviceMemory(0), Error);
}

}  // namespace
}  // namespace acgpu::gpusim
