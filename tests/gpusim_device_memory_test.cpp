#include "gpusim/device_memory.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

TEST(DeviceMemory, AllocAligns) {
  DeviceMemory mem(4096);
  const DevAddr a = mem.alloc(10);
  const DevAddr b = mem.alloc(10);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GT(b, a);
}

TEST(DeviceMemory, AllocCustomAlignment) {
  DeviceMemory mem(4096);
  mem.alloc(3, 1);
  const DevAddr b = mem.alloc(8, 64);
  EXPECT_EQ(b % 64, 0u);
}

TEST(DeviceMemory, AllocRejectsNonPowerOfTwoAlign) {
  DeviceMemory mem(1024);
  EXPECT_THROW(mem.alloc(8, 3), Error);
  EXPECT_THROW(mem.alloc(8, 0), Error);
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  DeviceMemory mem(1024);
  mem.alloc(512);
  EXPECT_THROW(mem.alloc(1024), Error);
}

TEST(DeviceMemory, LoadStoreRoundTrip) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(64);
  mem.store_u32(a, 0xdeadbeef);
  EXPECT_EQ(mem.load_u32(a), 0xdeadbeefu);
  mem.store_u8(a + 4, 0x7f);
  EXPECT_EQ(mem.load_u8(a + 4), 0x7f);
  mem.store_i32(a + 8, -12345);
  EXPECT_EQ(mem.load_i32(a + 8), -12345);
}

TEST(DeviceMemory, LittleEndianLayout) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(8);
  mem.store_u32(a, 0x04030201);
  EXPECT_EQ(mem.load_u8(a + 0), 1);
  EXPECT_EQ(mem.load_u8(a + 1), 2);
  EXPECT_EQ(mem.load_u8(a + 2), 3);
  EXPECT_EQ(mem.load_u8(a + 3), 4);
}

TEST(DeviceMemory, CopyInOut) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(16);
  const char src[] = "hello, device!!";
  mem.copy_in(a, src, sizeof src);
  char dst[sizeof src] = {};
  mem.copy_out(dst, a, sizeof src);
  EXPECT_STREQ(dst, src);
}

TEST(DeviceMemory, FillSetsBytes) {
  DeviceMemory mem(1024);
  const DevAddr a = mem.alloc(8);
  mem.fill(a, 0xab, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(mem.load_u8(a + i), 0xab);
}

TEST(DeviceMemory, BoundsChecked) {
  DeviceMemory mem(64);
  EXPECT_THROW(mem.load_u32(62), Error);
  EXPECT_THROW(mem.store_u8(64, 1), Error);
  EXPECT_THROW(mem.load_u8(100), Error);
}

TEST(DeviceMemory, MarkReleaseReusesSpace) {
  DeviceMemory mem(1024);
  mem.alloc(128);
  const std::size_t m = mem.mark();
  const DevAddr a = mem.alloc(256);
  mem.release(m);
  const DevAddr b = mem.alloc(256);
  EXPECT_EQ(a, b);
}

TEST(DeviceMemory, ReleaseAboveMarkThrows) {
  DeviceMemory mem(1024);
  const std::size_t m = mem.mark();
  EXPECT_THROW(mem.release(m + 1), Error);
}

TEST(DeviceMemory, ZeroCapacityThrows) {
  EXPECT_THROW(DeviceMemory(0), Error);
}

}  // namespace
}  // namespace acgpu::gpusim
