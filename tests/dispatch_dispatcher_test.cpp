// The advisory Dispatcher: force policies, decision/misprediction
// accounting, tune-cache traffic hooks, the dispatch.* telemetry mirror,
// and thread-safety of choose/observe (serve workers and the router's
// caller thread race on one shared instance — the TSan CI target).
#include "dispatch/dispatcher.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ac/automaton.h"
#include "ac/dfa.h"
#include "ac/pattern_set.h"
#include "telemetry/metrics_registry.h"

namespace acgpu::dispatch {
namespace {

struct Fixture {
  ac::PatternSet patterns{{"he", "she", "his", "hers"}};
  ac::Automaton automaton{patterns};
  ac::Dfa dfa{automaton, patterns, /*pad_pitch_to=*/8};
};

TEST(DispatchDispatcher, AutoFollowsTheModelAcrossTheCrossovers) {
  Fixture fx;
  Dispatcher dsp(fx.dfa);
  // Uncalibrated analytic seed: serial < ~7 KiB < parallel < ~100 KiB < GPU.
  const Decision tiny = dsp.choose(dsp.signature(std::string(1 << 10, 'a'),
                                                 /*session=*/false));
  EXPECT_EQ(tiny.backend, Backend::kSerialCpu);
  EXPECT_FALSE(tiny.forced);
  const Decision mid = dsp.choose(dsp.signature(std::string(32u << 10, 'a'),
                                                /*session=*/false));
  EXPECT_EQ(mid.backend, Backend::kParallelCpu);
  const Decision large = dsp.choose(dsp.signature(std::string(4u << 20, 'a'),
                                                  /*session=*/false));
  EXPECT_EQ(large.backend, Backend::kGpuPipeline);

  const DispatchStats stats = dsp.stats();
  EXPECT_EQ(stats.decisions[static_cast<int>(Backend::kSerialCpu)], 1u);
  EXPECT_EQ(stats.decisions[static_cast<int>(Backend::kParallelCpu)], 1u);
  EXPECT_EQ(stats.decisions[static_cast<int>(Backend::kGpuPipeline)], 1u);
}

TEST(DispatchDispatcher, ForcePoliciesPinTheBackendAndMarkForced) {
  Fixture fx;
  Dispatcher dsp(fx.dfa);
  const WorkloadSignature sig =
      dsp.signature(std::string(32u << 10, 'a'), false);
  EXPECT_EQ(dsp.choose(sig, ForcePolicy::kSerial).backend,
            Backend::kSerialCpu);
  EXPECT_EQ(dsp.choose(sig, ForcePolicy::kParallel).backend,
            Backend::kParallelCpu);
  EXPECT_EQ(dsp.choose(sig, ForcePolicy::kGpu).backend,
            Backend::kGpuPipeline);
  EXPECT_TRUE(dsp.choose(sig, ForcePolicy::kSerial).forced);

  // kWorst picks the predicted-slowest backend: at 32 KiB that is serial.
  const Decision worst = dsp.choose(sig, ForcePolicy::kWorst);
  EXPECT_TRUE(worst.forced);
  EXPECT_EQ(worst.backend, Backend::kSerialCpu);
  const auto w = static_cast<std::size_t>(worst.backend);
  for (int b = 0; b < kBackendCount; ++b)
    EXPECT_GE(worst.prediction.seconds[w],
              worst.prediction.seconds[static_cast<std::size_t>(b)]);
}

TEST(DispatchDispatcher, ConfiguredForcePolicyAppliesToPlainChoose) {
  Fixture fx;
  DispatcherOptions opt;
  opt.force = ForcePolicy::kGpu;
  Dispatcher dsp(fx.dfa, opt);
  const Decision d = dsp.choose(dsp.signature("tiny", false));
  EXPECT_EQ(d.backend, Backend::kGpuPipeline);
  EXPECT_TRUE(d.forced);
}

TEST(DispatchDispatcher, MispredictionNeedsUnforcedAndMarginBreach) {
  Fixture fx;
  Dispatcher dsp(fx.dfa);
  const WorkloadSignature sig =
      dsp.signature(std::string(32u << 10, 'a'), false);

  // Within margin of the runner-up: no misprediction.
  Decision d = dsp.choose(sig);
  dsp.observe(d, sig, d.prediction.runner_up_seconds * 1.05);
  EXPECT_EQ(dsp.stats().mispredictions, 0u);

  // Beyond the margin: counted.
  d = dsp.choose(sig);
  dsp.observe(d, sig, d.prediction.runner_up_seconds * 1.5);
  EXPECT_EQ(dsp.stats().mispredictions, 1u);

  // Forced decisions never count, however bad the actual.
  const Decision forced = dsp.choose(sig, ForcePolicy::kWorst);
  dsp.observe(forced, sig, forced.prediction.runner_up_seconds * 100.0);
  EXPECT_EQ(dsp.stats().mispredictions, 1u);
}

TEST(DispatchDispatcher, TuneTrafficHooksFeedTheStats) {
  Fixture fx;
  Dispatcher dsp(fx.dfa);
  dsp.note_tune_cache(/*hit=*/true);
  dsp.note_tune_cache(/*hit=*/false);
  dsp.note_tune_cache(/*hit=*/false);
  dsp.note_tune();
  const DispatchStats stats = dsp.stats();
  EXPECT_EQ(stats.tune_cache_hits, 1u);
  EXPECT_EQ(stats.tune_cache_misses, 2u);
  EXPECT_EQ(stats.tunes, 1u);
}

TEST(DispatchDispatcher, TelemetryMirrorsTheStats) {
  Fixture fx;
  telemetry::MetricsRegistry registry;
  DispatcherOptions opt;
  opt.metrics = &registry;
  Dispatcher dsp(fx.dfa, opt);

  const WorkloadSignature tiny = dsp.signature("x", false);
  dsp.choose(tiny);
  dsp.choose(tiny, ForcePolicy::kGpu);
  Decision d = dsp.choose(tiny);
  dsp.observe(d, tiny, 1.0);  // 1 modeled second: a gross misprediction
  dsp.note_tune_cache(false);
  dsp.note_tune();

  EXPECT_EQ(registry.counter("dispatch.decisions.serial").value(), 2u);
  EXPECT_EQ(registry.counter("dispatch.decisions.gpu").value(), 1u);
  EXPECT_EQ(registry.counter("dispatch.mispredictions").value(), 1u);
  EXPECT_EQ(registry.counter("dispatch.tune_cache.misses").value(), 1u);
  EXPECT_EQ(registry.counter("dispatch.tune_cache.tunes").value(), 1u);

  const DispatchStats stats = dsp.stats();
  EXPECT_EQ(stats.decisions[static_cast<int>(Backend::kSerialCpu)], 2u);
  EXPECT_EQ(stats.mispredictions, 1u);
}

TEST(DispatchDispatcher, ChooseAndObserveAreThreadSafe) {
  Fixture fx;
  telemetry::MetricsRegistry registry;
  DispatcherOptions opt;
  opt.metrics = &registry;
  Dispatcher dsp(fx.dfa, opt);

  constexpr int kThreads = 4;
  constexpr int kIters = 256;
  const std::string texts[] = {std::string(512, 'a'),
                               std::string(32u << 10, 'b'),
                               std::string(1u << 20, 'c')};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&dsp, &texts, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string& text = texts[(t + i) % 3];
        const WorkloadSignature sig =
            dsp.signature(text, /*session=*/(i % 2) == 0);
        const Decision d = dsp.choose(sig);
        dsp.observe(d, sig, d.prediction.best_seconds * (1.0 + 0.01 * t));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const DispatchStats stats = dsp.stats();
  std::uint64_t total = 0;
  for (int b = 0; b < kBackendCount; ++b) total += stats.decisions[b];
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace acgpu::dispatch
