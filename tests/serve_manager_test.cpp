// SessionManager: deterministic ids, LRU recency bookkeeping, eviction at
// capacity, and close semantics.
#include "serve/session_manager.h"

#include <gtest/gtest.h>

#include "ac/pattern_set.h"

namespace acgpu::serve {
namespace {

class ServeManager : public ::testing::Test {
 protected:
  ServeManager()
      : patterns_({"he", "she"}), dfa_(ac::build_dfa(patterns_, 8)) {}

  SessionId open(SessionManager& m, std::optional<SessionId>* evicted = nullptr) {
    return m.open(dfa_, nullptr, BoundaryMode::kDfaState, SessionLimits{}, evicted)
        .id();
  }

  ac::PatternSet patterns_;
  ac::Dfa dfa_;
};

TEST_F(ServeManager, IdsAreDeterministicAndNeverReused) {
  SessionManager m(2);
  EXPECT_EQ(open(m), 1u);
  EXPECT_EQ(open(m), 2u);
  m.close(1);
  m.close(2);
  EXPECT_EQ(open(m), 3u);  // no id reuse even after the set empties
  EXPECT_EQ(m.opened(), 3u);
}

TEST_F(ServeManager, RecencyOrderTracksOpenAndTouch) {
  SessionManager m(8);
  open(m);  // 1
  open(m);  // 2
  open(m);  // 3
  EXPECT_EQ(m.ids_by_recency(), (std::vector<SessionId>{3, 2, 1}));
  ASSERT_NE(m.touch(1), nullptr);
  EXPECT_EQ(m.ids_by_recency(), (std::vector<SessionId>{1, 3, 2}));
  // find() peeks without promoting.
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(m.ids_by_recency(), (std::vector<SessionId>{1, 3, 2}));
}

TEST_F(ServeManager, EvictsLeastRecentlyUsedAtCapacity) {
  SessionManager m(2);
  open(m);  // 1
  open(m);  // 2
  ASSERT_NE(m.touch(1), nullptr);  // now 2 is LRU
  std::optional<SessionId> evicted;
  EXPECT_EQ(open(m, &evicted), 3u);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 2u);
  EXPECT_EQ(m.touch(2), nullptr);  // the evicted session is gone
  EXPECT_NE(m.touch(1), nullptr);
  EXPECT_EQ(m.live(), 2u);
  EXPECT_EQ(m.evicted(), 1u);
}

TEST_F(ServeManager, NoEvictionBelowCapacityReportsNullopt) {
  SessionManager m(2);
  std::optional<SessionId> evicted = 42;  // stale value must be cleared
  open(m, &evicted);
  EXPECT_FALSE(evicted.has_value());
}

TEST_F(ServeManager, CloseRemovesFromRecencyList) {
  SessionManager m(3);
  open(m);
  open(m);
  open(m);
  EXPECT_TRUE(m.close(2));
  EXPECT_FALSE(m.close(2));  // already gone
  EXPECT_EQ(m.ids_by_recency(), (std::vector<SessionId>{3, 1}));
  // The freed slot means the next open evicts nothing.
  std::optional<SessionId> evicted;
  open(m, &evicted);
  EXPECT_FALSE(evicted.has_value());
}

TEST_F(ServeManager, CapacityOneEvictsEveryPredecessor) {
  SessionManager m(1);
  open(m);
  std::optional<SessionId> evicted;
  for (SessionId expect_victim = 1; expect_victim <= 5; ++expect_victim) {
    const SessionId id = open(m, &evicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, expect_victim);
    EXPECT_EQ(id, expect_victim + 1);
    EXPECT_EQ(m.live(), 1u);
  }
  EXPECT_EQ(m.evicted(), 5u);
}

TEST_F(ServeManager, SessionStatePersistsAcrossTouches) {
  SessionManager m(4);
  const SessionId id = open(m);
  m.touch(id)->begin_chunk("sh");
  m.touch(id)->begin_chunk("e");  // "she" AND its suffix "he" span sh|e
  EXPECT_EQ(m.find(id)->stats().spanning_matches, 2u);
  EXPECT_EQ(m.find(id)->bytes_fed(), 3u);
}

}  // namespace
}  // namespace acgpu::serve
