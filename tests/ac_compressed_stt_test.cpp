#include "ac/compressed_stt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ac/serial_matcher.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::ac {
namespace {

TEST(CompressedStt, EveryTransitionMatchesDense) {
  const Dfa dfa = build_dfa(PatternSet({"he", "she", "his", "hers"}));
  const CompressedStt c(dfa);
  ASSERT_EQ(c.state_count(), dfa.state_count());
  for (std::uint32_t s = 0; s < dfa.state_count(); ++s)
    for (int b = 0; b < 256; ++b)
      EXPECT_EQ(c.next(static_cast<std::int32_t>(s), static_cast<std::uint8_t>(b)),
                dfa.next(static_cast<std::int32_t>(s), static_cast<std::uint8_t>(b)))
          << "state " << s << " byte " << b;
}

TEST(CompressedStt, MatchColumnPreserved) {
  const Dfa dfa = build_dfa(PatternSet({"ab", "abc", "c"}));
  const CompressedStt c(dfa);
  for (std::uint32_t s = 0; s < dfa.state_count(); ++s)
    EXPECT_EQ(c.output_id(static_cast<std::int32_t>(s)),
              dfa.stt().output_id(static_cast<std::int32_t>(s)));
}

TEST(CompressedStt, RandomDfaEquivalence) {
  Rng rng(3);
  std::vector<std::string> patterns;
  for (int i = 0; i < 120; ++i) {
    std::string p;
    const auto len = rng.next_in(1, 9);
    for (std::uint64_t j = 0; j < len; ++j)
      p.push_back(static_cast<char>('a' + rng.next_below(5)));
    patterns.push_back(std::move(p));
  }
  const Dfa dfa = build_dfa(PatternSet(std::move(patterns)));
  const CompressedStt c(dfa);
  for (std::uint32_t s = 0; s < dfa.state_count(); ++s)
    for (int b = 0; b < 256; ++b)
      ASSERT_EQ(c.next(static_cast<std::int32_t>(s), static_cast<std::uint8_t>(b)),
                dfa.next(static_cast<std::int32_t>(s), static_cast<std::uint8_t>(b)));
}

TEST(CompressedStt, MatcherEqualsSerial) {
  const std::string corpus = workload::make_corpus(30000, 44);
  workload::ExtractConfig ec;
  ec.count = 80;
  const Dfa dfa = build_dfa(workload::extract_patterns(corpus, ec));
  const CompressedStt c(dfa);
  CollectSink sink;
  match_compressed(c, dfa, corpus, sink);
  auto got = std::move(sink.matches());
  std::sort(got.begin(), got.end());
  auto expect = find_all(dfa, corpus);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

TEST(CompressedStt, CompressesRealDictionaries) {
  const std::string corpus = workload::make_corpus(1 << 20, 45);
  workload::ExtractConfig ec;
  ec.count = 2000;
  ec.word_aligned = true;
  const Dfa dfa = build_dfa(workload::extract_patterns(corpus, ec));
  const CompressedStt c(dfa);
  // Deep states differ from the root in ~1 byte, so real dictionaries
  // compress by an order of magnitude or more.
  EXPECT_GT(c.compression_ratio(), 5.0);
  EXPECT_LT(c.size_bytes(), dfa.stt_bytes());
}

TEST(CompressedStt, SinglePatternExtremeCompression) {
  const Dfa dfa = build_dfa(PatternSet({"abcdefgh"}));
  const CompressedStt c(dfa);
  EXPECT_GT(c.compression_ratio(), 3.0);
}

TEST(CompressedStt, RootRowFallback) {
  // Transitions absent everywhere must resolve through the root row.
  const Dfa dfa = build_dfa(PatternSet({"zz"}));
  const CompressedStt c(dfa);
  const std::int32_t s1 = c.next(0, 'z');
  EXPECT_EQ(c.next(s1, 'a'), 0);   // falls back to root: no 'a' edge anywhere
  EXPECT_EQ(c.next(s1, 'z'), dfa.next(s1, 'z'));
}

TEST(CompressedStt, EmptyDfaRejected) {
  EXPECT_THROW(build_dfa(PatternSet{}), acgpu::Error);
}

}  // namespace
}  // namespace acgpu::ac
