#include "harness/figures.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/byte_units.h"
#include "util/error.h"

namespace acgpu::harness {
namespace {

PointResult make_point(std::uint64_t bytes, std::uint32_t patterns,
                       double serial, double global, double shared,
                       double naive) {
  PointResult r;
  r.text_bytes = bytes;
  r.pattern_count = patterns;
  r.serial_seconds = serial;
  r.global.seconds = global;
  r.shared.seconds = shared;
  r.shared_naive.seconds = naive;
  return r;
}

std::vector<PointResult> fake_results() {
  return {
      make_point(kMiB, 100, 1.0, 0.1, 0.01, 0.02),
      make_point(kMiB, 1000, 2.0, 0.4, 0.015, 0.04),
      make_point(2 * kMiB, 100, 2.0, 0.2, 0.02, 0.04),
      make_point(2 * kMiB, 1000, 4.0, 0.8, 0.03, 0.08),
  };
}

TEST(Figures, AllPaperFiguresDefined) {
  const auto& specs = paper_figures();
  ASSERT_EQ(specs.size(), 10u);
  for (const char* id : {"fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
                         "fig20", "fig21", "fig22", "fig23"})
    EXPECT_NO_THROW(figure(id));
}

TEST(Figures, UnknownIdThrows) {
  EXPECT_THROW(figure("fig99"), Error);
}

TEST(Figures, SpeedupValuesComputed) {
  const auto results = fake_results();
  EXPECT_DOUBLE_EQ(figure("fig20").value(results[0]), 10.0);   // serial/global
  EXPECT_DOUBLE_EQ(figure("fig21").value(results[0]), 100.0);  // serial/shared
  EXPECT_DOUBLE_EQ(figure("fig22").value(results[0]), 10.0);   // global/shared
  EXPECT_DOUBLE_EQ(figure("fig23").value(results[0]), 2.0);    // naive/diag
}

TEST(Figures, ThroughputValues) {
  const auto results = fake_results();
  // fig16: 1MiB * 8 bits / 1s / 1e9.
  EXPECT_NEAR(figure("fig16").value(results[0]),
              static_cast<double>(kMiB) * 8 / 1e9, 1e-12);
}

TEST(Figures, TableHasGridShape) {
  const Table t = figure_table(figure("fig21"), fake_results());
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1MB"), std::string::npos);
  EXPECT_NE(out.find("2MB"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("100.0x"), std::string::npos);
}

TEST(Figures, TableMarksMissingPoints) {
  auto results = fake_results();
  results.pop_back();  // drop (2MB, 1000)
  const Table t = figure_table(figure("fig21"), results);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('-'), std::string::npos);
}

TEST(Figures, RangeOverGrid) {
  const auto range = figure_range(figure("fig21"), fake_results());
  EXPECT_NEAR(range.min, 100.0, 1e-9);
  EXPECT_NEAR(range.max, 4.0 / 0.03, 1e-9);
}

TEST(Figures, RangeOfEmptyResultsThrows) {
  EXPECT_THROW(figure_range(figure("fig13"), {}), Error);
}

TEST(Figures, EverySpecHasPaperExpectation) {
  for (const auto& spec : paper_figures()) {
    EXPECT_FALSE(spec.title.empty()) << spec.id;
    EXPECT_FALSE(spec.unit.empty()) << spec.id;
    EXPECT_FALSE(spec.paper_expectation.empty()) << spec.id;
  }
}

}  // namespace
}  // namespace acgpu::harness
