#include "ac/pattern_set.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace acgpu::ac {
namespace {

TEST(PatternSet, BasicProperties) {
  PatternSet set({"he", "she", "his", "hers"});
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0], "he");
  EXPECT_EQ(set[3], "hers");
  EXPECT_EQ(set.min_length(), 2u);
  EXPECT_EQ(set.max_length(), 4u);
  EXPECT_EQ(set.total_bytes(), 2u + 3 + 3 + 4);
}

TEST(PatternSet, EmptySet) {
  PatternSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.max_length(), 0u);
  EXPECT_EQ(set.min_length(), 0u);
}

TEST(PatternSet, RejectsEmptyPattern) {
  EXPECT_THROW(PatternSet({"a", "", "b"}), Error);
}

TEST(PatternSet, DedupKeepsFirstOccurrence) {
  PatternSet set({"abc", "xyz", "abc", "abc"});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], "abc");
  EXPECT_EQ(set[1], "xyz");
}

TEST(PatternSet, DedupDisabledKeepsDuplicates) {
  PatternSet set({"abc", "abc"}, /*dedup=*/false);
  EXPECT_EQ(set.size(), 2u);
}

TEST(PatternSet, LengthById) {
  PatternSet set({"a", "abcd"});
  EXPECT_EQ(set.length(0), 1u);
  EXPECT_EQ(set.length(1), 4u);
}

TEST(PatternSet, HandlesBinaryBytes) {
  // Patterns may contain any byte, including NUL (explicit-length strings).
  PatternSet set({std::string("\x00\xff\x7f", 3), std::string("\x00\x01", 2)});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.max_length(), 3u);
  EXPECT_EQ(set[0][0], '\x00');
}

TEST(PatternSet, IterationOrderIsInsertionOrder) {
  PatternSet set({"b", "a", "c"});
  std::vector<std::string> seen(set.begin(), set.end());
  EXPECT_EQ(seen, (std::vector<std::string>{"b", "a", "c"}));
}

}  // namespace
}  // namespace acgpu::ac
