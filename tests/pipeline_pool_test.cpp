// StagingPool property and stress tests: exhaustion under backpressure,
// earliest-ready buffer selection, reuse-after-release poisoning, and an
// 8-thread interleaved acquire/release soak (meaningful under
// -DACGPU_TSAN=ON, where the pool's mutex/condvar discipline is checked by
// ThreadSanitizer).
#include "pipeline/staging_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "gpusim/device_memory.h"
#include "util/error.h"

namespace acgpu::pipeline {
namespace {

TEST(StagingPool, ExhaustionUnderBackpressure) {
  gpusim::DeviceMemory mem(1 << 20);
  StagingPool pool(mem, {2, 256, 8, false});
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.available(), 2u);

  const auto a = pool.try_acquire();
  const auto b = pool.try_acquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->index, b->index);
  EXPECT_NE(a->addr, b->addr);
  EXPECT_EQ(pool.available(), 0u);

  // Both buffers leased: the pool is exhausted, not blocking.
  EXPECT_FALSE(pool.try_acquire().has_value());
  EXPECT_EQ(pool.exhaustion_waits(), 0u);

  // A blocked host thread parks until a release arrives.
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    const StagingPool::Lease lease = pool.acquire_blocking();
    acquired.store(true);
    pool.release(lease.index);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());  // still parked: nothing was released

  pool.release(a->index, /*drained_at=*/1.0);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(pool.exhaustion_waits(), 1u);
  pool.release(b->index);
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_EQ(pool.max_in_use(), 2u);  // never more than the 2 buffers
  EXPECT_EQ(pool.acquires(), 3u);
}

TEST(StagingPool, HandsOutTheBufferThatDrainsEarliest) {
  gpusim::DeviceMemory mem(1 << 20);
  StagingPool pool(mem, {3, 64, 0, false});

  const auto a = pool.try_acquire();
  const auto b = pool.try_acquire();
  const auto c = pool.try_acquire();
  ASSERT_TRUE(a && b && c);
  // Fresh buffers are ready at t=0: no lease ever waits on them.
  EXPECT_EQ(a->ready, 0.0);

  pool.release(a->index, /*drained_at=*/5.0);
  pool.release(b->index, /*drained_at=*/1.0);
  pool.release(c->index, /*drained_at=*/3.0);

  // Re-acquisition order follows drain time, not index order.
  const auto first = pool.try_acquire();
  const auto second = pool.try_acquire();
  const auto third = pool.try_acquire();
  ASSERT_TRUE(first && second && third);
  EXPECT_EQ(first->index, b->index);
  EXPECT_EQ(first->ready, 1.0);
  EXPECT_EQ(second->index, c->index);
  EXPECT_EQ(second->ready, 3.0);
  EXPECT_EQ(third->index, a->index);
  EXPECT_EQ(third->ready, 5.0);
}

TEST(StagingPool, PoisonsBuffersOnRelease) {
  gpusim::DeviceMemory mem(1 << 20);
  constexpr std::uint64_t kPayload = 32;
  constexpr std::uint64_t kPad = 8;
  StagingPool pool(mem, {1, kPayload, kPad, /*poison_on_release=*/true});

  const auto lease = pool.try_acquire();
  ASSERT_TRUE(lease.has_value());
  std::vector<std::uint8_t> bytes(kPayload + kPad, 0x41);
  mem.copy_in(lease->addr, bytes.data(), bytes.size());

  pool.release(lease->index);
  // A stage that reads a buffer it no longer leases must see poison, not
  // the previous batch's bytes — pad included.
  const std::uint8_t* raw = mem.raw(lease->addr, kPayload + kPad);
  for (std::uint64_t i = 0; i < kPayload + kPad; ++i)
    ASSERT_EQ(raw[i], StagingPool::kPoisonByte) << "offset " << i;
}

TEST(StagingPool, VerifiesPoisonIntactOnReLease) {
  gpusim::DeviceMemory mem(1 << 20);
  constexpr std::uint64_t kPayload = 32;
  constexpr std::uint64_t kPad = 8;
  StagingPool pool(mem, {1, kPayload, kPad, /*poison_on_release=*/true});

  // Clean release -> re-lease round trip: the poison is intact, no throw.
  const auto first = pool.try_acquire();
  ASSERT_TRUE(first.has_value());
  pool.release(first->index);
  const auto second = pool.try_acquire();
  ASSERT_TRUE(second.has_value());
  pool.release(second->index);

  // A stage scribbling on the buffer while it is un-leased (here: one byte
  // in the tail pad) must be caught at the NEXT lease, not silently handed
  // to the next batch.
  const std::uint8_t scribble = 0x00;
  mem.copy_in(second->addr + kPayload + kPad - 1, &scribble, 1);
  EXPECT_THROW((void)pool.try_acquire(), Error);
}

TEST(StagingPool, PoisonVerificationCanBeDisabled) {
  gpusim::DeviceMemory mem(1 << 20);
  StagingPool::Options options{1, 32, 0, /*poison_on_release=*/true};
  options.verify_poison_on_lease = false;
  StagingPool pool(mem, options);

  const auto lease = pool.try_acquire();
  ASSERT_TRUE(lease.has_value());
  pool.release(lease->index);
  const std::uint8_t scribble = 0x00;
  mem.copy_in(lease->addr, &scribble, 1);
  EXPECT_TRUE(pool.try_acquire().has_value());  // scribble tolerated
}

TEST(StagingPool, ReleaseOfUnleasedBufferThrows) {
  gpusim::DeviceMemory mem(1 << 20);
  StagingPool pool(mem, {2, 16, 0, false});
  EXPECT_THROW(pool.release(0), Error);       // never leased
  EXPECT_THROW(pool.release(7), Error);       // out of range
  const auto lease = pool.try_acquire();
  ASSERT_TRUE(lease.has_value());
  pool.release(lease->index);
  EXPECT_THROW(pool.release(lease->index), Error);  // double release
}

TEST(StagingPool, ZeroBuffersIsAnError) {
  gpusim::DeviceMemory mem(1 << 20);
  EXPECT_THROW(StagingPool(mem, {0, 16, 0, false}), Error);
}

TEST(StagingPool, EightThreadInterleavedAcquireRelease) {
  gpusim::DeviceMemory mem(1 << 20);
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kBuffers = 4;  // fewer than threads: real contention
  constexpr std::uint64_t kPayload = 64;
  constexpr int kIterations = 200;
  StagingPool pool(mem, {kBuffers, kPayload, 0, /*poison_on_release=*/true});

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, &mem, t] {
      std::vector<std::uint8_t> scratch(kPayload, static_cast<std::uint8_t>(t));
      for (int i = 0; i < kIterations; ++i) {
        const StagingPool::Lease lease = pool.acquire_blocking();
        // Exclusive use while leased: writes to lease->addr are data-race
        // free across threads because no two live leases share a buffer.
        mem.copy_in(lease.addr, scratch.data(), scratch.size());
        pool.release(lease.index, static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(pool.available(), kBuffers);
  EXPECT_EQ(pool.acquires(), static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_LE(pool.max_in_use(), kBuffers);
  EXPECT_GE(pool.max_in_use(), 1u);
}

}  // namespace
}  // namespace acgpu::pipeline
