#include "ac/automaton.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace acgpu::ac {
namespace {

Automaton paper_automaton() {
  return Automaton(PatternSet({"he", "she", "his", "hers"}));
}

// Fig. 1(b): failure function f(1)=0 f(2)=0 f(3)=0 f(4)=1 f(5)=2 f(6)=0
// f(7)=3 f(8)=0 f(9)=3.
TEST(Automaton, PaperFailureFunction) {
  Automaton a = paper_automaton();
  EXPECT_EQ(a.fail(1), 0);
  EXPECT_EQ(a.fail(2), 0);
  EXPECT_EQ(a.fail(3), 0);
  EXPECT_EQ(a.fail(4), 1);
  EXPECT_EQ(a.fail(5), 2);
  EXPECT_EQ(a.fail(6), 0);
  EXPECT_EQ(a.fail(7), 3);
  EXPECT_EQ(a.fail(8), 0);
  EXPECT_EQ(a.fail(9), 3);
}

// Fig. 1(c): output(2)={he}, output(5)={she,he}, output(7)={his},
// output(9)={hers}.
TEST(Automaton, PaperOutputFunction) {
  Automaton a = paper_automaton();
  EXPECT_EQ(a.output(2), (std::vector<std::int32_t>{0}));
  EXPECT_EQ(a.output(5), (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(a.output(7), (std::vector<std::int32_t>{2}));
  EXPECT_EQ(a.output(9), (std::vector<std::int32_t>{3}));
  EXPECT_TRUE(a.output(0).empty());
  EXPECT_TRUE(a.output(4).empty());
  EXPECT_EQ(a.total_output_entries(), 5u);
}

TEST(Automaton, GotoRootNeverFails) {
  Automaton a = paper_automaton();
  for (int b = 0; b < 256; ++b) {
    const State s = a.goto_fn(0, static_cast<std::uint8_t>(b));
    EXPECT_NE(s, Automaton::kFail);
  }
  EXPECT_EQ(a.goto_fn(0, 'h'), 1);
  EXPECT_EQ(a.goto_fn(0, 's'), 3);
  EXPECT_EQ(a.goto_fn(0, 'x'), 0);
}

TEST(Automaton, GotoNonRootFails) {
  Automaton a = paper_automaton();
  EXPECT_EQ(a.goto_fn(1, 'e'), 2);
  EXPECT_EQ(a.goto_fn(2, 'r'), 8);  // "he" -r-> "her"
  // g(5, 'r') is fail in the goto graph; the paper's "ushers" walk reaches 8
  // only via f(5)=2 (the DFA compiles this away).
  EXPECT_EQ(a.goto_fn(5, 'r'), Automaton::kFail);
  EXPECT_EQ(a.goto_fn(5, 'x'), Automaton::kFail);
}

TEST(Automaton, BfsOrderStartsAtRootAndCoversAll) {
  Automaton a = paper_automaton();
  const auto& order = a.bfs_order();
  ASSERT_EQ(order.size(), a.state_count());
  EXPECT_EQ(order.front(), 0);
  std::vector<bool> seen(a.state_count(), false);
  for (State s : order) {
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
  }
}

TEST(Automaton, FailureLinksPointStrictlyShallower) {
  Rng rng(7);
  std::vector<std::string> patterns;
  for (int i = 0; i < 200; ++i) {
    std::string p;
    const auto len = rng.next_in(1, 10);
    for (std::uint64_t j = 0; j < len; ++j)
      p.push_back(static_cast<char>('a' + rng.next_below(4)));
    patterns.push_back(std::move(p));
  }
  PatternSet set(std::move(patterns));
  Automaton a(set);
  const Trie& trie = a.trie();
  for (State s = 1; s < static_cast<State>(a.state_count()); ++s)
    EXPECT_LT(trie.depth(a.fail(s)), trie.depth(s));
}

TEST(Automaton, FailureLinkIsLongestProperSuffix) {
  // For {"aaaa"}, f of the depth-k "aaa..a" node is the depth k-1 node.
  Automaton a(PatternSet({"aaaa"}));
  State s = 0;
  std::vector<State> chain;
  for (int i = 0; i < 4; ++i) {
    s = a.trie().child(s, 'a');
    chain.push_back(s);
  }
  EXPECT_EQ(a.fail(chain[0]), 0);
  EXPECT_EQ(a.fail(chain[1]), chain[0]);
  EXPECT_EQ(a.fail(chain[2]), chain[1]);
  EXPECT_EQ(a.fail(chain[3]), chain[2]);
}

TEST(Automaton, OutputClosedOverFailureLinks) {
  // "abab" ends also "bab"? No — but "ab" is a suffix of "abab"? No: suffix
  // of abab of length 2 is "ab"! Yes. So output(abab) = {abab, ab}.
  Automaton a(PatternSet({"abab", "ab"}));
  State s = 0;
  for (char c : std::string("abab")) s = a.trie().child(s, static_cast<std::uint8_t>(c));
  EXPECT_EQ(a.output(s), (std::vector<std::int32_t>{0, 1}));
}

TEST(Automaton, HasOutputMatchesOutput) {
  Automaton a = paper_automaton();
  for (State s = 0; s < static_cast<State>(a.state_count()); ++s)
    EXPECT_EQ(a.has_output(s), !a.output(s).empty());
}

TEST(Automaton, SinglePattern) {
  Automaton a(PatternSet({"x"}));
  EXPECT_EQ(a.state_count(), 2u);
  EXPECT_EQ(a.fail(1), 0);
  EXPECT_EQ(a.output(1), (std::vector<std::int32_t>{0}));
}

}  // namespace
}  // namespace acgpu::ac
