// The cost model's three analytic curves, the anchor-ladder CPU
// calibration (cpumodel's cold-cache warm-up must make small scans more
// expensive per byte than the asymptote), the GPU curve install, and the
// per-bucket EWMA refinement with its clamped observation ratio.
#include "dispatch/cost_model.h"

#include <gtest/gtest.h>

#include <string>

#include "ac/automaton.h"
#include "ac/dfa.h"
#include "ac/pattern_set.h"
#include "dispatch/signature.h"

namespace acgpu::dispatch {
namespace {

struct Fixture {
  ac::PatternSet patterns{{"he", "she", "his", "hers"}};
  ac::Automaton automaton{patterns};
  ac::Dfa dfa{automaton, patterns, /*pad_pitch_to=*/8};
  PatternStats stats = compute_pattern_stats(dfa);

  WorkloadSignature sig(std::size_t bytes) const {
    return make_signature(stats, std::string(bytes, 'a'), /*session=*/false);
  }
};

TEST(DispatchCostModel, UncalibratedCrossoversFollowTheAnalyticSeed) {
  Fixture fx;
  CostModel model;  // flat cpb line, analytic GPU seed
  // Tiny: the parallel fork/join and GPU per-scan overheads dominate.
  const Prediction tiny = model.predict_all(fx.sig(1 << 10));
  EXPECT_EQ(tiny.best, Backend::kSerialCpu);
  // Mid: serial cost amortizes the fork/join but not the GPU overhead.
  const Prediction mid = model.predict_all(fx.sig(32u << 10));
  EXPECT_EQ(mid.best, Backend::kParallelCpu);
  // Large: bytes/throughput dwarfs every overhead; the GPU slope wins.
  const Prediction large = model.predict_all(fx.sig(4u << 20));
  EXPECT_EQ(large.best, Backend::kGpuPipeline);
}

TEST(DispatchCostModel, PredictionRanksAndExposesTheRunnerUp) {
  Fixture fx;
  CostModel model;
  const Prediction p = model.predict_all(fx.sig(32u << 10));
  EXPECT_EQ(p.best_seconds,
            p.seconds[static_cast<std::size_t>(p.best)]);
  double second_best = 0.0;
  bool first = true;
  for (int b = 0; b < kBackendCount; ++b) {
    if (static_cast<Backend>(b) == p.best) continue;
    const double s = p.seconds[static_cast<std::size_t>(b)];
    if (first || s < second_best) second_best = s;
    first = false;
  }
  EXPECT_EQ(p.runner_up_seconds, second_best);
  EXPECT_GE(p.runner_up_seconds, p.best_seconds);
}

TEST(DispatchCostModel, CalibrationCapturesTheColdCacheWarmup) {
  Fixture fx;
  CostModel model;
  const std::string sample(256u << 10, 'a');
  model.calibrate_cpu(fx.dfa, sample);
  EXPECT_GT(model.serial_cycles_per_byte(), 0.0);

  // The modeled per-byte cost must DECREASE with size: small scans pay the
  // cache warm-up, the asymptote does not. A flat line would fail this.
  const double tiny = model.predict(Backend::kSerialCpu, fx.sig(64));
  const double big = model.predict(Backend::kSerialCpu, fx.sig(64u << 10));
  EXPECT_GT(tiny / 64.0, big / static_cast<double>(64u << 10));

  // Total seconds stay monotone in bytes across the ladder.
  double prev = 0.0;
  for (std::size_t bytes : {64u, 256u, 1024u, 4096u, 16384u, 65536u,
                            262144u}) {
    const double s = model.predict(Backend::kSerialCpu, fx.sig(bytes));
    EXPECT_GT(s, prev) << "at " << bytes;
    prev = s;
  }
}

TEST(DispatchCostModel, InterpolationStaysBetweenAnchors) {
  Fixture fx;
  CostModel model;
  model.calibrate_cpu(fx.dfa, std::string(128u << 10, 'a'));
  // 512 B sits between the 256 B and 1 KiB anchors; piecewise-linear
  // interpolation must land between the endpoint prices.
  const double lo = model.predict(Backend::kSerialCpu, fx.sig(256));
  const double mid = model.predict(Backend::kSerialCpu, fx.sig(512));
  const double hi = model.predict(Backend::kSerialCpu, fx.sig(1024));
  EXPECT_GT(mid, lo);
  EXPECT_LT(mid, hi);
}

TEST(DispatchCostModel, GpuCurveInstallReplacesTheSeed) {
  CostModel model;
  model.set_gpu_curve(/*overhead_seconds=*/123e-6,
                      /*bytes_per_second=*/2.5e9);
  EXPECT_DOUBLE_EQ(model.gpu_overhead_seconds(), 123e-6);
  EXPECT_DOUBLE_EQ(model.gpu_bytes_per_second(), 2.5e9);
  Fixture fx;
  const double s = model.predict(Backend::kGpuPipeline, fx.sig(1u << 20));
  EXPECT_DOUBLE_EQ(s, 123e-6 + static_cast<double>(1u << 20) / 2.5e9);
}

TEST(DispatchCostModel, ObserveRefinesOnlyTheTouchedBucket) {
  Fixture fx;
  CostModel model;
  const WorkloadSignature sig = fx.sig(32u << 10);
  EXPECT_DOUBLE_EQ(model.correction(Backend::kSerialCpu, sig), 1.0);

  // Actual = 2x analytic: correction moves toward 2 by one EWMA step.
  const double base = model.predict(Backend::kSerialCpu, sig);
  model.observe(Backend::kSerialCpu, sig, 2.0 * base);
  const double corr = model.correction(Backend::kSerialCpu, sig);
  const double alpha = model.config().ewma_alpha;
  EXPECT_NEAR(corr, (1.0 - alpha) + alpha * 2.0, 1e-12);

  // Other backends and other buckets are untouched.
  EXPECT_DOUBLE_EQ(model.correction(Backend::kGpuPipeline, sig), 1.0);
  EXPECT_DOUBLE_EQ(model.correction(Backend::kSerialCpu, fx.sig(4u << 20)),
                   1.0);
}

TEST(DispatchCostModel, ObservationRatioIsClamped) {
  Fixture fx;
  CostModel model;
  const WorkloadSignature sig = fx.sig(8u << 10);
  const double base = model.predict(Backend::kSerialCpu, sig);
  const double alpha = model.config().ewma_alpha;
  // A 100x outlier contributes at most the 4.0 clamp...
  model.observe(Backend::kSerialCpu, sig, 100.0 * base);
  EXPECT_NEAR(model.correction(Backend::kSerialCpu, sig),
              (1.0 - alpha) + alpha * 4.0, 1e-12);
  // ...and a near-zero one at least the 0.25 clamp.
  CostModel low;
  low.observe(Backend::kSerialCpu, sig, 1e-15);
  EXPECT_GE(low.correction(Backend::kSerialCpu, sig),
            (1.0 - alpha) + alpha * 0.25 - 1e-12);
}

TEST(DispatchCostModel, ZeroAlphaDisablesRefinement) {
  Fixture fx;
  CostModelConfig cfg;
  cfg.ewma_alpha = 0.0;
  CostModel model(cfg);
  const WorkloadSignature sig = fx.sig(8u << 10);
  model.observe(Backend::kSerialCpu, sig,
                10.0 * model.predict(Backend::kSerialCpu, sig));
  EXPECT_DOUBLE_EQ(model.correction(Backend::kSerialCpu, sig), 1.0);
}

TEST(DispatchCostModel, ModeledActualsTrackTheCurveFamily) {
  Fixture fx;
  const CostModelConfig cfg;
  const std::string text(64u << 10, 'a');
  const double serial = modeled_serial_seconds(fx.dfa, text, cfg.cpu);
  const double parallel = modeled_parallel_seconds(fx.dfa, text, cfg);
  EXPECT_GT(serial, 0.0);
  // Parallel = serial / speedup + fork/join overhead.
  const double speedup =
      static_cast<double>(cfg.parallel_threads) * cfg.parallel_efficiency;
  EXPECT_NEAR(parallel, serial / speedup + cfg.parallel_overhead_seconds,
              serial * 0.05);
  EXPECT_LT(parallel, serial);  // 64 KiB amortizes the fork/join
}

}  // namespace
}  // namespace acgpu::dispatch
