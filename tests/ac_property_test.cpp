// Property tests: every matcher in the library (DFA serial, NFA, PFAC,
// chunked decomposition) must agree with the naive O(n*m) oracle on random
// dictionaries over random texts, across alphabet sizes and match densities.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "ac/chunking.h"
#include "ac/dfa.h"
#include "ac/naive_matcher.h"
#include "ac/nfa_matcher.h"
#include "ac/pfac.h"
#include "ac/serial_matcher.h"
#include "util/rng.h"

namespace acgpu::ac {
namespace {

struct Scenario {
  int alphabet;        ///< distinct symbols in text and patterns
  int pattern_count;
  int max_pattern_len;
  int text_len;
  std::uint64_t seed;
};

std::string random_string(Rng& rng, int len, int alphabet) {
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i)
    s.push_back(static_cast<char>('a' + rng.next_below(static_cast<std::uint64_t>(alphabet))));
  return s;
}

class MatcherAgreement : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& sc = GetParam();
    Rng rng(sc.seed);
    std::vector<std::string> patterns;
    for (int i = 0; i < sc.pattern_count; ++i) {
      const int len = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(sc.max_pattern_len)));
      patterns.push_back(random_string(rng, len, sc.alphabet));
    }
    set_ = PatternSet(std::move(patterns));
    text_ = random_string(rng, sc.text_len, sc.alphabet);
    expected_ = find_all_naive(set_, text_);
  }

  PatternSet set_;
  std::string text_;
  std::vector<Match> expected_;
};

TEST_P(MatcherAgreement, SerialDfaMatchesNaive) {
  auto got = find_all(build_dfa(set_), text_);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected_);
}

TEST_P(MatcherAgreement, NfaMatchesNaive) {
  auto got = find_all_nfa(Automaton(set_), text_);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected_);
}

TEST_P(MatcherAgreement, PfacMatchesNaive) {
  EXPECT_EQ(find_all_pfac(PfacAutomaton(set_), text_), expected_);
}

TEST_P(MatcherAgreement, ChunkedMatchesNaiveAcrossChunkSizes) {
  const Dfa dfa = build_dfa(set_);
  for (std::uint64_t cs : {1ull, 3ull, 16ull, 64ull}) {
    EXPECT_EQ(find_all_chunked(dfa, text_, cs), expected_) << "chunk " << cs;
  }
}

TEST_P(MatcherAgreement, DfaWithPaddedPitchMatchesNaive) {
  auto got = find_all(build_dfa(set_, /*pad_pitch_to=*/8), text_);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected_);
}

// Dense-match regimes (tiny alphabet), sparse regimes (large alphabet),
// single patterns, many short patterns, long patterns.
INSTANTIATE_TEST_SUITE_P(
    Scenarios, MatcherAgreement,
    ::testing::Values(
        Scenario{2, 5, 4, 500, 101},      // binary alphabet: match storm
        Scenario{2, 20, 8, 800, 102},     // binary, nested/overlapping
        Scenario{3, 10, 6, 1000, 103},
        Scenario{4, 50, 10, 1500, 104},
        Scenario{8, 100, 12, 2000, 105},
        Scenario{26, 30, 16, 3000, 106},  // English-like sparsity
        Scenario{26, 1, 5, 500, 107},     // single pattern
        Scenario{26, 200, 3, 1000, 108},  // many very short patterns
        Scenario{5, 8, 16, 64, 109},      // patterns comparable to text size
        Scenario{2, 3, 2, 50, 110}),      // tiny everything
    // Parameter named to dodge -Wshadow (the generated caller also binds
    // `info`); appends rather than operator+ to dodge the GCC 12 -Wrestrict
    // false positive (PR 105651).
    [](const ::testing::TestParamInfo<Scenario>& param_info) {
      const Scenario& s = param_info.param;
      std::string name = "a";
      name += std::to_string(s.alphabet);
      name += "_p";
      name += std::to_string(s.pattern_count);
      name += "_l";
      name += std::to_string(s.max_pattern_len);
      name += "_n";
      name += std::to_string(s.text_len);
      return name;
    });

// Seed sweep at one mid-size scenario: ten independent universes.
class MatcherAgreementSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherAgreementSeeds, AllMatchersAgree) {
  Rng rng(GetParam());
  std::vector<std::string> patterns;
  for (int i = 0; i < 40; ++i)
    patterns.push_back(random_string(rng, 1 + static_cast<int>(rng.next_below(9)), 4));
  PatternSet set(std::move(patterns));
  const std::string text = random_string(rng, 1200, 4);

  const auto expected = find_all_naive(set, text);
  auto serial = find_all(build_dfa(set), text);
  std::sort(serial.begin(), serial.end());
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(find_all_pfac(PfacAutomaton(set), text), expected);
  EXPECT_EQ(find_all_chunked(build_dfa(set), text, 37), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherAgreementSeeds,
                         ::testing::Range<std::uint64_t>(9000, 9010));

}  // namespace
}  // namespace acgpu::ac
