// Hostcheck over the cluster tier: the Router path — N background shards,
// concurrent feeders, and a mid-stream fail-stop rebalance — must audit
// hazard-free across the devices x streams matrix. The lock pass in
// particular vets the cluster.router.mu -> serve.mu -> device.mu hierarchy
// under real concurrency; the matches check keeps correctness in the loop.
#include "hostcheck/audit.h"

#include <gtest/gtest.h>

#include <sstream>

#include "oracle/workload_gen.h"

namespace acgpu::hostcheck {
namespace {

oracle::CompiledWorkload workload(std::uint64_t seed, std::uint64_t i) {
  return oracle::CompiledWorkload(oracle::generate_workload(seed, i));
}

TEST(HostcheckCluster, RouterAuditsCleanAcrossDeviceStreamMatrix) {
  const oracle::CompiledWorkload w = workload(11, 3);
  for (const std::uint32_t devices : {1u, 2u, 4u}) {
    for (const std::uint32_t streams : {2u, 4u}) {
      const HostAuditOutcome outcome = audit_cluster(w, devices, streams);
      const std::string tag =
          "devices=" + std::to_string(devices) +
          " streams=" + std::to_string(streams);
      EXPECT_TRUE(outcome.report.clean())
          << tag << ": " << outcome.report.total_hazards() << " hazard(s)";
      EXPECT_TRUE(outcome.matches_ok) << tag;
      EXPECT_GT(outcome.report.ops, 0u) << tag;
      EXPECT_GT(outcome.report.lock_events, 0u) << tag;
      EXPECT_EQ(outcome.report.count(HazardKind::kLockOrderCycle), 0u) << tag;
    }
  }
}

TEST(HostcheckCluster, RebalanceUnderAuditSeesEveryShardsLocks) {
  // 4 shards, 4 feeders: the injected failure forces a drain + migration
  // while the other shards keep scanning. The trace must show more distinct
  // tracked mutexes than a single-service audit (router + per-shard serve
  // and scheduler/manager locks + per-device scan locks).
  HostAuditSpec spec;
  spec.serve_threads = 4;
  spec.serve_chunks = 11;
  const HostAuditOutcome outcome = audit_cluster(workload(11, 4), 4, 2, spec);
  if (!outcome.report.clean()) {
    std::ostringstream os;
    outcome.report.write_text(os);
    ADD_FAILURE() << os.str();
  }
  EXPECT_TRUE(outcome.report.clean())
      << outcome.report.total_hazards() << " hazard(s)";
  EXPECT_TRUE(outcome.matches_ok);
  EXPECT_GT(outcome.report.mutexes, 4u);
  EXPECT_GT(outcome.report.lock_edges, 0u);
}

}  // namespace
}  // namespace acgpu::hostcheck
