// Analyzer unit tests on hand-built traces: one per hazard kind, plus the
// happens-before semantics (stream FIFO, event edges, wait_until joins) that
// decide whether a conflicting pair is ordered, and the report plumbing
// (exemplar cap, merge, JSON shape).
#include "hostcheck/analyze.h"

#include <gtest/gtest.h>

#include <sstream>

#include "hostcheck/recorder.h"
#include "telemetry/json.h"

namespace acgpu::hostcheck {
namespace {

using gpusim::HostAccessRecord;
using gpusim::HostEventRecord;
using gpusim::HostLeaseRecord;
using gpusim::HostLockRecord;
using gpusim::HostOpKind;
using gpusim::HostOpRecord;
using gpusim::HostReleaseRecord;
using gpusim::HostWaitEventRecord;
using gpusim::HostWaitUntilRecord;

/// Builder for hand-made traces: op ids are assigned in call order.
struct TraceBuilder {
  HostTrace trace;
  std::uint64_t next_op = 0;

  TraceBuilder() { trace.sims = 1; }

  std::uint64_t op(std::uint32_t stream, HostOpKind kind, double start,
                   double end) {
    const std::uint64_t id = next_op++;
    trace.records.push_back(HostOpRecord{0, id, stream, kind, start, end, 0, ""});
    return id;
  }
  void access(std::uint64_t op, std::uint64_t addr, std::uint64_t bytes,
              bool is_write) {
    trace.records.push_back(HostAccessRecord{0, op, addr, bytes, is_write});
  }
  void event(std::uint32_t event, std::uint32_t stream) {
    trace.records.push_back(HostEventRecord{0, event, stream, 0.0});
  }
  void wait_event(std::uint32_t stream, std::uint32_t event) {
    trace.records.push_back(HostWaitEventRecord{0, stream, event});
  }
  void wait_until(std::uint32_t stream, double seconds) {
    trace.records.push_back(HostWaitUntilRecord{0, stream, seconds});
  }
};

TEST(HostcheckAnalyze, EmptyTraceIsClean) {
  const HostAuditReport report = analyze(HostTrace{});
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total_hazards(), 0u);
}

TEST(HostcheckAnalyze, SameStreamConflictIsOrdered) {
  TraceBuilder b;
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  const auto r = b.op(0, HostOpKind::kKernel, 1.0, 2.0);
  b.access(w, 0x100, 64, true);
  b.access(r, 0x100, 64, false);
  EXPECT_TRUE(analyze(b.trace).clean());  // FIFO edge orders the pair
}

TEST(HostcheckAnalyze, CrossStreamConflictWithoutEdgeIsUploadReuse) {
  TraceBuilder b;
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  const auto r = b.op(1, HostOpKind::kKernel, 0.5, 2.0);
  b.access(w, 0x100, 64, true);
  b.access(r, 0x100, 64, false);
  const HostAuditReport report = analyze(b.trace);
  EXPECT_EQ(report.count(HazardKind::kUploadReuse), 1u);
  ASSERT_EQ(report.hazards.size(), 1u);
  EXPECT_EQ(report.hazards[0].first.op, 0);
  EXPECT_EQ(report.hazards[0].second.op, 1);
}

TEST(HostcheckAnalyze, EventEdgeOrdersCrossStreamConflict) {
  TraceBuilder b;
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  b.event(0, 0);        // captures the H2D
  b.wait_event(1, 0);   // stream 1's next op starts after it
  const auto r = b.op(1, HostOpKind::kKernel, 1.0, 2.0);
  b.access(w, 0x100, 64, true);
  b.access(r, 0x100, 64, false);
  EXPECT_TRUE(analyze(b.trace).clean());
}

TEST(HostcheckAnalyze, WaitUntilOrdersOpsThatEndByThen) {
  TraceBuilder b;
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  b.wait_until(1, 1.0);  // covers the H2D exactly (end == threshold)
  const auto r = b.op(1, HostOpKind::kKernel, 1.0, 2.0);
  b.access(w, 0x100, 64, true);
  b.access(r, 0x100, 64, false);
  EXPECT_TRUE(analyze(b.trace).clean());
}

TEST(HostcheckAnalyze, WaitUntilBeforeOpEndDoesNotOrder) {
  TraceBuilder b;
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  b.wait_until(1, 0.5);  // too early: the H2D ends later
  const auto r = b.op(1, HostOpKind::kKernel, 0.5, 2.0);
  b.access(w, 0x100, 64, true);
  b.access(r, 0x100, 64, false);
  EXPECT_EQ(analyze(b.trace).count(HazardKind::kUploadReuse), 1u);
}

TEST(HostcheckAnalyze, D2HInvolvedConflictClassifiesAsWriteDuringD2H) {
  TraceBuilder b;
  const auto d = b.op(0, HostOpKind::kD2H, 0.0, 1.0);
  const auto w = b.op(1, HostOpKind::kH2D, 0.0, 1.0);
  b.access(d, 0x200, 128, false);
  b.access(w, 0x200, 128, true);
  EXPECT_EQ(analyze(b.trace).count(HazardKind::kWriteDuringD2H), 1u);
}

TEST(HostcheckAnalyze, ReadOnlyOverlapIsNotAConflict) {
  TraceBuilder b;
  const auto a = b.op(0, HostOpKind::kKernel, 0.0, 1.0);
  const auto c = b.op(1, HostOpKind::kKernel, 0.0, 1.0);
  b.access(a, 0x100, 64, false);
  b.access(c, 0x100, 64, false);
  EXPECT_TRUE(analyze(b.trace).clean());
}

TEST(HostcheckAnalyze, DisjointRangesAreNotAConflict) {
  TraceBuilder b;
  const auto a = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  const auto c = b.op(1, HostOpKind::kKernel, 0.0, 1.0);
  b.access(a, 0x100, 64, true);
  b.access(c, 0x140, 64, false);  // begins exactly where a's range ends
  EXPECT_TRUE(analyze(b.trace).clean());
}

TEST(HostcheckAnalyze, DoubleLeaseDetected) {
  Recorder rec;
  const std::uint32_t pool = rec.register_pool("upload", 2, 64, 0);
  rec.on_lease(HostLeaseRecord{pool, 0, 0x100, 64, 0.0});
  rec.on_lease(HostLeaseRecord{pool, 0, 0x100, 64, 0.0});
  const HostAuditReport report = analyze(rec.trace());
  EXPECT_EQ(report.count(HazardKind::kDoubleLease), 1u);
  // ... and the un-released buffer also leaks at trace end.
  EXPECT_EQ(report.count(HazardKind::kLeakedLease), 1u);
}

TEST(HostcheckAnalyze, LeakedLeaseDetected) {
  Recorder rec;
  const std::uint32_t pool = rec.register_pool("upload", 2, 64, 0);
  rec.on_lease(HostLeaseRecord{pool, 0, 0x100, 64, 0.0});
  rec.on_lease(HostLeaseRecord{pool, 1, 0x200, 64, 0.0});
  rec.on_release(HostReleaseRecord{pool, 0, 1.0});
  const HostAuditReport report = analyze(rec.trace());
  EXPECT_EQ(report.count(HazardKind::kLeakedLease), 1u);
  ASSERT_EQ(report.hazards.size(), 1u);
  EXPECT_EQ(report.hazards[0].buffer, 1);
}

TEST(HostcheckAnalyze, ReleaseWhileInFlightDetected) {
  TraceBuilder b;
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64});
  b.trace.records.push_back(HostLeaseRecord{0, 0, 0x100, 64, 0.0});
  const auto k = b.op(0, HostOpKind::kKernel, 0.0, 3.0);
  b.access(k, 0x100, 64, false);
  // Declared drained at 1.0s, but the kernel access ends at 3.0s.
  b.trace.records.push_back(HostReleaseRecord{0, 0, 1.0});
  EXPECT_EQ(analyze(b.trace).count(HazardKind::kReleaseWhileInFlight), 1u);
}

TEST(HostcheckAnalyze, ReleaseCoveringAllAccessesIsClean) {
  TraceBuilder b;
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64});
  b.trace.records.push_back(HostLeaseRecord{0, 0, 0x100, 64, 0.0});
  const auto k = b.op(0, HostOpKind::kKernel, 0.0, 3.0);
  b.access(k, 0x100, 64, false);
  b.trace.records.push_back(HostReleaseRecord{0, 0, 3.0});
  EXPECT_TRUE(analyze(b.trace).clean());
}

TEST(HostcheckAnalyze, AccessToUnleasedBufferIsUseAfterRelease) {
  TraceBuilder b;
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64});
  b.trace.records.push_back(HostLeaseRecord{0, 0, 0x100, 64, 0.0});
  b.trace.records.push_back(HostReleaseRecord{0, 0, 0.0});
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  b.access(w, 0x100, 64, true);
  EXPECT_EQ(analyze(b.trace).count(HazardKind::kUseAfterRelease), 1u);
}

TEST(HostcheckAnalyze, RecycledAddressBelongsToTheNewPool) {
  // Pool 0 dies between scans; pool 1 is allocated over the same device
  // range. The access after pool 1's lease must attribute to pool 1 (live
  // lease), not to pool 0's stale released range.
  TraceBuilder b;
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64});
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64});
  b.trace.records.push_back(HostLeaseRecord{0, 0, 0x100, 64, 0.0});
  b.trace.records.push_back(HostReleaseRecord{0, 0, 1.0});
  b.trace.records.push_back(HostLeaseRecord{1, 0, 0x100, 64, 0.0});
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  b.access(w, 0x100, 64, true);
  b.trace.records.push_back(HostReleaseRecord{1, 0, 1.0});
  EXPECT_TRUE(analyze(b.trace).clean());
}

TEST(HostcheckAnalyze, ConcurrentSimsWithOverlappingOffsetsDoNotCrossAttribute) {
  // Two cluster shards: each device's arena starts at offset 0, so shard 0
  // and shard 1's upload pools occupy the SAME offset range while both are
  // live. Shard 1 releases its buffer; shard 0's kernel read under its own
  // live lease must attribute to shard 0's pool (sim 0), not trip a
  // use-after-release on shard 1's (sim 1).
  TraceBuilder b;
  b.trace.sims = 2;
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64, 0});
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64, 1});
  b.trace.records.push_back(HostLeaseRecord{0, 0, 0x100, 64, 0.0});
  b.trace.records.push_back(HostLeaseRecord{1, 0, 0x100, 64, 0.0});
  b.trace.records.push_back(HostReleaseRecord{1, 0, 1.0});  // shard 1 done
  const auto k = b.op(0, HostOpKind::kKernel, 0.0, 1.0);
  b.access(k, 0x100, 64, false);  // sim 0, under sim 0's live lease
  b.trace.records.push_back(HostReleaseRecord{0, 0, 1.0});
  EXPECT_TRUE(analyze(b.trace).clean());
}

TEST(HostcheckAnalyze, ConcurrentSimLeaseDoesNotForgetTheOtherShardsRange) {
  // Shard 1's lease lands on the same offsets as shard 0's live buffer; it
  // must not erase shard 0's range — shard 0's protocol checks stay armed,
  // so its own stale access is still caught.
  TraceBuilder b;
  b.trace.sims = 2;
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64, 0});
  b.trace.pools.push_back(PoolInfo{"upload", 1, 64, 1});
  b.trace.records.push_back(HostLeaseRecord{0, 0, 0x100, 64, 0.0});
  b.trace.records.push_back(HostLeaseRecord{1, 0, 0x100, 64, 0.0});
  b.trace.records.push_back(HostReleaseRecord{0, 0, 0.0});
  const auto w = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  b.access(w, 0x100, 64, true);  // sim 0 writes after its own release
  b.trace.records.push_back(HostReleaseRecord{1, 0, 1.0});
  EXPECT_EQ(analyze(b.trace).count(HazardKind::kUseAfterRelease), 1u);
}

TEST(HostcheckAnalyze, LockOrderCycleDetected) {
  Recorder rec;
  const std::uint32_t a = rec.register_mutex("serve.mu");
  const std::uint32_t c = rec.register_mutex("serve.scheduler.mu");
  rec.on_lock(HostLockRecord{1, a, true});
  rec.on_lock(HostLockRecord{1, c, true});
  rec.on_lock(HostLockRecord{1, c, false});
  rec.on_lock(HostLockRecord{1, a, false});
  rec.on_lock(HostLockRecord{2, c, true});
  rec.on_lock(HostLockRecord{2, a, true});
  rec.on_lock(HostLockRecord{2, a, false});
  rec.on_lock(HostLockRecord{2, c, false});
  const HostAuditReport report = analyze(rec.trace());
  EXPECT_EQ(report.count(HazardKind::kLockOrderCycle), 1u);
  ASSERT_EQ(report.hazards.size(), 1u);
  // The cycle closes back on its anchor: serve.mu -> scheduler -> serve.mu.
  ASSERT_EQ(report.hazards[0].cycle.size(), 3u);
  EXPECT_EQ(report.hazards[0].cycle.front(), "serve.mu");
  EXPECT_EQ(report.hazards[0].cycle.back(), "serve.mu");
}

TEST(HostcheckAnalyze, ConsistentLockOrderIsClean) {
  Recorder rec;
  const std::uint32_t a = rec.register_mutex("serve.mu");
  const std::uint32_t c = rec.register_mutex("serve.scheduler.mu");
  for (const std::uint64_t thread : {1u, 2u, 3u}) {
    rec.on_lock(HostLockRecord{thread, a, true});
    rec.on_lock(HostLockRecord{thread, c, true});
    rec.on_lock(HostLockRecord{thread, c, false});
    rec.on_lock(HostLockRecord{thread, a, false});
  }
  const HostAuditReport report = analyze(rec.trace());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.lock_edges, 1u);
  EXPECT_EQ(report.lock_events, 12u);
}

TEST(HostcheckAnalyze, ExemplarCapKeepsCounting) {
  TraceBuilder b;
  // 4 unordered writer pairs to the same range across two streams.
  for (int i = 0; i < 4; ++i) {
    const auto x = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
    const auto y = b.op(1, HostOpKind::kH2D, 0.0, 1.0);
    b.access(x, 0x100 + 0x1000 * i, 64, true);
    b.access(y, 0x100 + 0x1000 * i, 64, true);
  }
  AnalyzeOptions options;
  options.max_hazards = 2;
  const HostAuditReport report = analyze(b.trace, options);
  EXPECT_EQ(report.hazards.size(), 2u);
  EXPECT_EQ(report.dropped_hazards, 2u);
  EXPECT_EQ(report.count(HazardKind::kUnorderedConflict), 4u);
  EXPECT_EQ(report.total_hazards(), 4u);
}

TEST(HostcheckAnalyze, MergeFoldsCountsAndRespectsCap) {
  TraceBuilder b;
  const auto x = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  const auto y = b.op(1, HostOpKind::kKernel, 0.0, 1.0);
  b.access(x, 0x100, 64, true);
  b.access(y, 0x100, 64, false);
  const HostAuditReport one = analyze(b.trace);
  ASSERT_EQ(one.total_hazards(), 1u);

  HostAuditReport merged;
  merged.merge(one, /*max_hazards=*/1);
  merged.merge(one, /*max_hazards=*/1);
  EXPECT_EQ(merged.count(HazardKind::kUploadReuse), 2u);
  EXPECT_EQ(merged.hazards.size(), 1u);  // capped exemplars
  EXPECT_EQ(merged.dropped_hazards, 1u);
  EXPECT_EQ(merged.ops, 2u * one.ops);
}

TEST(HostcheckAnalyze, JsonReportParsesAndCarriesTheHazard) {
  TraceBuilder b;
  const auto x = b.op(0, HostOpKind::kH2D, 0.0, 1.0);
  const auto y = b.op(1, HostOpKind::kKernel, 0.0, 1.0);
  b.access(x, 0x100, 64, true);
  b.access(y, 0x100, 64, false);
  std::ostringstream out;
  analyze(b.trace).write_json(out);

  const auto json = telemetry::parse_json(out.str());
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->find("clean")->boolean(), false);
  EXPECT_EQ(json->number_at("total_hazards"), 1.0);
  const telemetry::JsonValue* hazards = json->find("hazards");
  ASSERT_TRUE(hazards != nullptr && hazards->is_array());
  ASSERT_EQ(hazards->array().size(), 1u);
  const telemetry::JsonValue& h = hazards->array()[0];
  EXPECT_EQ(h.find("kind")->string(), "upload-reuse");
  EXPECT_EQ(h.find("first")->number_at("op"), 0.0);
  EXPECT_EQ(h.find("second")->number_at("op"), 1.0);
  EXPECT_EQ(json->find("telemetry")->number_at("hostcheck.hazards"), 1.0);
}

}  // namespace
}  // namespace acgpu::hostcheck
