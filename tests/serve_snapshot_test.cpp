// Session export/import (the cluster rebalance primitive): snapshots carry
// id, carried boundary state, stats, quotas, and unpolled matches across
// services; export refuses sessions with undrained work; import refuses
// live-id collisions and namespace/mode mismatches.
#include <gtest/gtest.h>

#include <string>

#include "ac/serial_matcher.h"
#include "serve/service.h"

namespace acgpu::serve {
namespace {

ServeOptions fast_options() {
  ServeOptions opt;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  return opt;
}

StreamService make_service(const std::vector<std::string>& patterns,
                           const ServeOptions& opt) {
  auto r = StreamService::create(ac::PatternSet(patterns), opt);
  ACGPU_CHECK(r.is_ok(), r.status().to_string());
  return std::move(r).value();
}

TEST(ServeSnapshot, ExportImportPreservesIdStateAndUnpolledMatches) {
  StreamService a = make_service({"hers"}, fast_options());
  StreamService b = make_service({"hers"}, fast_options());

  const SessionId id = a.open().value();
  // One full match (unpolled) + a dangling "he" prefix carried as state.
  ASSERT_TRUE(a.feed(id, "xhersxxhe").is_ok());
  ASSERT_TRUE(a.drain().is_ok());

  auto snapshot = a.export_session(id);
  ASSERT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();
  EXPECT_EQ(snapshot.value().id, id);
  // Export closes the source side.
  EXPECT_EQ(a.poll(id).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.stats().sessions_exported, 1u);

  ASSERT_TRUE(b.import_session(snapshot.value()).is_ok());
  EXPECT_EQ(b.stats().sessions_imported, 1u);
  // The prefix completes on the importing service at the right global offset.
  ASSERT_TRUE(b.feed(id, "rs").is_ok());
  ASSERT_TRUE(b.drain().is_ok());
  const std::vector<ac::Match> expected = {{4, 0}, {10, 0}};
  auto got = b.poll(id).value();
  ac::normalize_matches(got);
  EXPECT_EQ(got, expected);
}

TEST(ServeSnapshot, ExportRequiresDrainedSession) {
  ServeOptions opt = fast_options();
  opt.max_queue_chunks = 64;
  StreamService srv = make_service({"ab"}, opt);
  const SessionId id = srv.open().value();
  ASSERT_TRUE(srv.feed(id, "abab").is_ok());
  // Queued chunk -> export refuses; the session stays open and intact.
  EXPECT_EQ(srv.export_session(id).status().code(), StatusCode::kOverloaded);
  ASSERT_TRUE(srv.drain().is_ok());
  EXPECT_TRUE(srv.export_session(id).is_ok());
}

TEST(ServeSnapshot, ExportUnknownIdIsInvalidArgument) {
  StreamService srv = make_service({"ab"}, fast_options());
  EXPECT_EQ(srv.export_session(42).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeSnapshot, ImportRejectsLiveIdCollision) {
  StreamService a = make_service({"ab"}, fast_options());
  StreamService b = make_service({"ab"}, fast_options());
  const SessionId id = a.open().value();
  b.open().value();  // same deterministic id on an identical service
  ASSERT_TRUE(a.drain().is_ok());
  const auto snapshot = a.export_session(id).value();
  EXPECT_EQ(b.import_session(snapshot).code(), StatusCode::kInvalidArgument);
}

TEST(ServeSnapshot, ImportRejectsBoundaryModeMismatch) {
  ServeOptions pfac = fast_options();
  pfac.engine.variant = pipeline::KernelVariant::kPfac;
  StreamService a = make_service({"ab"}, fast_options());
  StreamService b = make_service({"ab"}, pfac);
  const SessionId id = a.open().value();
  const auto snapshot = a.export_session(id).value();
  EXPECT_EQ(b.import_session(snapshot).code(), StatusCode::kInvalidArgument);
}

TEST(ServeSnapshot, PfacTailTravelsWithTheSnapshot) {
  ServeOptions opt = fast_options();
  opt.engine.variant = pipeline::KernelVariant::kPfac;
  StreamService a = make_service({"abcd"}, opt);
  StreamService b = make_service({"abcd"}, opt);
  const SessionId id = a.open().value();
  ASSERT_TRUE(a.feed(id, "xxabc").is_ok());
  ASSERT_TRUE(a.drain().is_ok());
  const auto snapshot = a.export_session(id).value();
  ASSERT_TRUE(b.import_session(snapshot).is_ok());
  ASSERT_TRUE(b.feed(id, "d").is_ok());
  ASSERT_TRUE(b.drain().is_ok());
  const std::vector<ac::Match> expected = {{5, 0}};  // "abcd" across services
  EXPECT_EQ(b.poll(id).value(), expected);
}

TEST(ServeSnapshot, QuotasSurviveMigration) {
  ServeOptions opt = fast_options();
  opt.session_limits.max_bytes = 6;
  StreamService a = make_service({"ab"}, opt);
  StreamService b = make_service({"ab"}, opt);
  const SessionId id = a.open().value();
  ASSERT_TRUE(a.feed(id, "abab").is_ok());
  ASSERT_TRUE(a.drain().is_ok());
  const auto snapshot = a.export_session(id).value();
  ASSERT_TRUE(b.import_session(snapshot).is_ok());
  ASSERT_TRUE(b.feed(id, "ab").is_ok());  // 6 bytes total: at quota
  EXPECT_EQ(b.feed(id, "a").code(), StatusCode::kCapacityExceeded);
}

}  // namespace
}  // namespace acgpu::serve
