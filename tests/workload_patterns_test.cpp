#include "workload/pattern_extract.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ac/naive_matcher.h"
#include "util/error.h"
#include "workload/dna.h"
#include "workload/markov_corpus.h"

namespace acgpu::workload {
namespace {

TEST(ExtractPatterns, CountAndLengthBounds) {
  const std::string corpus = make_corpus(100000, 1);
  ExtractConfig ec;
  ec.count = 500;
  ec.min_length = 4;
  ec.max_length = 16;
  const ac::PatternSet set = extract_patterns(corpus, ec);
  EXPECT_EQ(set.size(), 500u);
  EXPECT_GE(set.min_length(), 4u);
  EXPECT_LE(set.max_length(), 16u);
}

TEST(ExtractPatterns, PatternsAreSubstringsOfCorpus) {
  const std::string corpus = make_corpus(50000, 2);
  ExtractConfig ec;
  ec.count = 100;
  const ac::PatternSet set = extract_patterns(corpus, ec);
  for (const auto& p : set)
    EXPECT_NE(corpus.find(p), std::string::npos) << "pattern not in corpus: " << p;
}

TEST(ExtractPatterns, PatternsAreDistinct) {
  const std::string corpus = make_corpus(50000, 3);
  ExtractConfig ec;
  ec.count = 300;
  const ac::PatternSet set = extract_patterns(corpus, ec);
  std::set<std::string> unique(set.begin(), set.end());
  EXPECT_EQ(unique.size(), set.size());
}

TEST(ExtractPatterns, DeterministicForSeed) {
  const std::string corpus = make_corpus(50000, 4);
  ExtractConfig ec;
  ec.count = 50;
  ec.seed = 1234;
  const ac::PatternSet a = extract_patterns(corpus, ec);
  const ac::PatternSet b = extract_patterns(corpus, ec);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
}

TEST(ExtractPatterns, ExtractedPatternsActuallyMatch) {
  const std::string corpus = make_corpus(20000, 5);
  ExtractConfig ec;
  ec.count = 20;
  const ac::PatternSet set = extract_patterns(corpus, ec);
  EXPECT_GE(ac::find_all_naive(set, corpus).size(), set.size());
}

TEST(ExtractPatterns, FailsLoudlyOnRepetitiveCorpus) {
  ExtractConfig ec;
  ec.count = 100;
  ec.min_length = 4;
  ec.max_length = 4;
  // Only one distinct 4-substring exists.
  EXPECT_THROW(extract_patterns(std::string(1000, 'a'), ec), Error);
}

TEST(ExtractPatterns, ValidatesConfig) {
  const std::string corpus = make_corpus(1000, 6);
  ExtractConfig ec;
  ec.count = 0;
  EXPECT_THROW(extract_patterns(corpus, ec), Error);
  ec.count = 1;
  ec.min_length = 8;
  ec.max_length = 4;
  EXPECT_THROW(extract_patterns(corpus, ec), Error);
  ec.min_length = 4;
  ec.max_length = 2000;
  EXPECT_THROW(extract_patterns(corpus, ec), Error);
}

TEST(Dna, SequenceUsesOnlyBases) {
  const std::string dna = make_dna_sequence(10000, 7);
  EXPECT_EQ(dna.size(), 10000u);
  for (char c : dna) EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
}

TEST(Dna, SequenceRoughlyUniform) {
  const std::string dna = make_dna_sequence(40000, 8);
  std::size_t a = 0;
  for (char c : dna) a += c == 'A';
  EXPECT_NEAR(static_cast<double>(a) / dna.size(), 0.25, 0.02);
}

TEST(Dna, MotifsDistinctAndCorrectLength) {
  const std::string genome = make_dna_sequence(50000, 9);
  const ac::PatternSet motifs = extract_dna_motifs(genome, 200, 12, 0.1, 10);
  EXPECT_EQ(motifs.size(), 200u);
  EXPECT_EQ(motifs.min_length(), 12u);
  EXPECT_EQ(motifs.max_length(), 12u);
}

TEST(Dna, ZeroMutationMotifsAllMatch) {
  const std::string genome = make_dna_sequence(20000, 11);
  const ac::PatternSet motifs = extract_dna_motifs(genome, 20, 10, 0.0, 12);
  EXPECT_GE(ac::find_all_naive(motifs, genome).size(), motifs.size());
}

TEST(Dna, ValidatesArguments) {
  const std::string genome = make_dna_sequence(100, 13);
  EXPECT_THROW(extract_dna_motifs(genome, 0, 10, 0.0, 1), Error);
  EXPECT_THROW(extract_dna_motifs(genome, 5, 200, 0.0, 1), Error);
  EXPECT_THROW(make_dna_sequence(0, 1), Error);
}

}  // namespace
}  // namespace acgpu::workload
