// parse_snapshot round trip of the cluster-era metric families: a real
// 2-device Router run publishes router.*, device.<k>.*, and health.<k>.*
// series, the snapshot is serialized with write_json and re-read with
// parse_snapshot, and every name/value must survive the trip.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acgpu.h"

namespace acgpu {
namespace {

telemetry::MetricsSnapshot run_cluster_and_snapshot(
    telemetry::MetricsRegistry& registry) {
  cluster::ClusterOptions opt;
  opt.devices = 2;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.admission = serve::AdmissionPolicy::kAutoFlush;
  opt.metrics = &registry;
  opt.slo = telemetry::SloPolicy::serving_defaults();

  Result<cluster::Router> router = cluster::Router::create(
      ac::PatternSet({"he", "she", "his", "hers"}), opt);
  EXPECT_TRUE(router.is_ok()) << router.status().to_string();
  cluster::Router& cl = router.value();

  const std::string stream = "ushers and his hershey";
  for (int s = 0; s < 4; ++s) {
    const serve::SessionId id = cl.open().value();
    EXPECT_TRUE(cl.feed(id, stream).is_ok());
  }
  EXPECT_TRUE(cl.drain().is_ok());
  EXPECT_TRUE(cl.scan("she sells seashells; his hers").is_ok());
  cl.shutdown();
  return registry.snapshot();
}

TEST(SnapshotRoundTripTest, RouterAndDeviceFamiliesSurviveWriteParse) {
  telemetry::MetricsRegistry registry;
  const telemetry::MetricsSnapshot snap = run_cluster_and_snapshot(registry);

  // The run must actually have populated the PR 8 families plus the
  // health.<k>.* series this PR adds.
  const std::vector<std::string> expected = {
      "router.sessions.opened", "router.feeds",
      "router.scans",           "device.0.serve.batches",
      "device.1.serve.batches", "device.0.serve.feeds.accepted",
      "health.0.state",         "health.1.state",
  };
  for (const std::string& name : expected)
    EXPECT_TRUE(snap.value(name).has_value()) << name << " missing from run";

  std::ostringstream out;
  snap.write_json(out);
  const auto parsed = telemetry::parse_snapshot(out.str());
  ASSERT_TRUE(parsed.has_value());

  ASSERT_EQ(parsed->entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].name, snap.entries[i].name);
    // write_json keeps default stream precision (6 significant digits), so
    // wall-clock-derived gauges round-trip to within that, not bit-exactly.
    EXPECT_NEAR(parsed->entries[i].value, snap.entries[i].value,
                1e-5 * std::max(1.0, std::abs(snap.entries[i].value)))
        << snap.entries[i].name;
  }
  EXPECT_EQ(parsed->value("router.sessions.opened"), 4.0);
  EXPECT_EQ(parsed->value("router.feeds"), 4.0);
}

TEST(SnapshotRoundTripTest, ParseRejectsNonSnapshotJson) {
  EXPECT_FALSE(telemetry::parse_snapshot("not json").has_value());
  EXPECT_FALSE(telemetry::parse_snapshot("{\"nope\":{}}").has_value());
}

}  // namespace
}  // namespace acgpu
