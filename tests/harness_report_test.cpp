#include "harness/report.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/byte_units.h"
#include "util/csv.h"
#include "util/error.h"

namespace acgpu::harness {
namespace {

PointResult fake_point(std::uint64_t bytes, std::uint32_t patterns, double serial,
                       double global, double shared) {
  PointResult r;
  r.text_bytes = bytes;
  r.pattern_count = patterns;
  r.serial_seconds = serial;
  r.global.seconds = global;
  r.shared.seconds = shared;
  r.shared_naive.seconds = shared * 2;
  return r;
}

std::vector<PointResult> fake_results() {
  return {fake_point(kMiB, 100, 1.0, 0.2, 0.02),
          fake_point(kMiB, 1000, 2.0, 0.5, 0.04),
          fake_point(4 * kMiB, 100, 4.0, 0.6, 0.05),
          fake_point(4 * kMiB, 1000, 8.0, 1.5, 0.08)};
}

TEST(Report, PrintFigureMentionsEverything) {
  testing::internal::CaptureStdout();
  print_figure(figure("fig21"), fake_results(), /*from_cache=*/true);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("fig21"), std::string::npos);
  EXPECT_NE(out.find("loaded from cache"), std::string::npos);
  EXPECT_NE(out.find("measured range"), std::string::npos);
  EXPECT_NE(out.find("paper reports"), std::string::npos);
  EXPECT_NE(out.find("1MB"), std::string::npos);
}

TEST(Report, PrintFigureComputedVariant) {
  testing::internal::CaptureStdout();
  print_figure(figure("fig13"), fake_results(), /*from_cache=*/false);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("sweep computed"), std::string::npos);
}

TEST(Report, CsvExportRoundTrips) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "acgpu_fig_test.csv";
  export_figure_csv(figure("fig21"), fake_results(), path.string());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(parse_csv_line(line),
            (std::vector<std::string>{"text_bytes", "pattern_count", "speedup"}));
  std::size_t rows = 0;
  double first_value = 0;
  while (std::getline(in, line)) {
    const auto fields = parse_csv_line(line);
    ASSERT_EQ(fields.size(), 3u);
    if (rows == 0) first_value = std::stod(fields[2]);
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
  EXPECT_DOUBLE_EQ(first_value, 50.0);  // 1.0 / 0.02
  fs::remove(path);
}

TEST(Report, CsvExportToUnwritablePathThrows) {
  EXPECT_THROW(export_figure_csv(figure("fig13"), fake_results(),
                                 "/nonexistent-dir/x.csv"),
               Error);
}

}  // namespace
}  // namespace acgpu::harness
