// Fuzzed stream x pool-depth conformance: every (streams, pool_depth)
// combination the staging layer distinguishes must produce exactly the
// matches of a single-shot Engine::scan, across all oracle workload
// families (oracle/workload_gen.h). Staging geometry is pure timing — a
// divergence here means a batch was stitched, clamped, or recycled
// incorrectly, and the oracle's differential diff pinpoints where.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ac/match.h"
#include "gpusim/device_memory.h"
#include "oracle/differential.h"
#include "oracle/matcher.h"
#include "oracle/workload_gen.h"
#include "pipeline/engine.h"
#include "pipeline/pipeline.h"

namespace acgpu::pipeline {
namespace {

gpusim::GpuConfig small_gpu() {
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 4;  // functional runs simulate every block; keep them quick
  return cfg;
}

constexpr std::uint64_t kSeed = 0xDE9C0F;
constexpr std::uint32_t kStreams[] = {1, 2, 3, 4, 6, 8};
constexpr std::uint32_t kDepths[] = {2, 4, 8};
constexpr KernelVariant kVariants[] = {KernelVariant::kShared,
                                       KernelVariant::kGlobalOnly,
                                       KernelVariant::kPfac};

/// Runs one staged configuration in Functional mode, growing the match
/// capacity on overflow (tiny batches concentrate matches per thread).
Result<std::vector<ac::Match>> run_staged(const oracle::CompiledWorkload& w,
                                          KernelVariant variant,
                                          std::uint32_t streams,
                                          std::uint32_t depth) {
  PipelineOptions opt;
  opt.variant = variant;
  opt.streams = streams;
  opt.pool_depth = depth;
  // Split the text into ~7 batches so lane cycling and the overlap stitch
  // are both exercised; rebalance_batches may shrink this further, which is
  // exactly the production path.
  opt.batch_bytes = std::max<std::uint64_t>(1, w.text().size() / 7);
  opt.threads_per_block = 64;
  opt.mode = gpusim::SimMode::Functional;

  for (std::uint32_t capacity = 64; capacity <= (1u << 14); capacity *= 4) {
    opt.match_capacity = capacity;
    opt.pfac_match_capacity = capacity;
    gpusim::DeviceMemory mem(64u << 20);
    Result<PipelineResult> r = [&] {
      if (variant == KernelVariant::kPfac) {
        const kernels::DevicePfac dpfac(mem, w.pfac());
        return MatchPipeline(small_gpu(), mem, dpfac, opt).run(w.text());
      }
      const kernels::DeviceDfa ddfa(mem, w.dfa());
      return MatchPipeline(small_gpu(), mem, ddfa, opt).run(w.text());
    }();
    if (!r.is_ok()) return r.status();
    if (r.value().overflowed) continue;
    EXPECT_EQ(r.value().stats.effective_streams,
              std::min(streams, depth));  // the documented clamp, never silent
    EXPECT_EQ(r.value().stats.streams_clamped, streams > depth);
    ac::normalize_matches(r.value().matches);
    return std::move(r.value().matches);
  }
  return Status::capacity_exceeded("staged run overflowed at capacity 16384");
}

TEST(PipelineDepthConformance, AllStreamDepthCombosMatchSingleShotScan) {
  for (std::uint64_t iteration = 0; iteration < oracle::workload_family_count();
       ++iteration) {
    const oracle::CompiledWorkload w(oracle::generate_workload(kSeed, iteration));
    SCOPED_TRACE("workload " + w.name());

    // The reference: a single-shot scan through the public Engine (one
    // batch, one stream), itself cross-checked against the serial DFA.
    EngineOptions eopt;
    eopt.gpu = small_gpu();
    eopt.streams = 1;
    eopt.batch_bytes = w.text().size() + 16;
    eopt.threads_per_block = 64;
    DeviceOptions dopt;
    dopt.gpu = eopt.gpu;
    Result<Device> device = Device::create(dopt);
    ASSERT_TRUE(device.is_ok()) << device.status().to_string();
    Result<Engine> engine = Engine::create(device.value(), w.patterns(), eopt);
    ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
    Result<ScanResult> single = engine.value().scan(w.text());
    ASSERT_TRUE(single.is_ok()) << single.status().to_string();
    ASSERT_FALSE(single.value().overflowed);
    std::vector<ac::Match> reference = single.value().matches;
    ac::normalize_matches(reference);
    ASSERT_EQ(reference, oracle::reference_matches(w))
        << "single-shot Engine::scan disagrees with the serial DFA";

    std::size_t combo = 0;
    for (const std::uint32_t streams : kStreams) {
      for (const std::uint32_t depth : kDepths) {
        const KernelVariant variant = kVariants[combo++ % std::size(kVariants)];
        const std::uint64_t salt = streams * 100 + depth;
        Result<std::vector<ac::Match>> got =
            run_staged(w, variant, streams, depth);
        ASSERT_TRUE(got.is_ok())
            << "streams=" << streams << " depth=" << depth << " variant "
            << to_string(variant) << ": " << got.status().to_string();
        const auto divergence = oracle::diff_matches(
            w, std::string("pipeline-s") + std::to_string(streams) + "-d" +
                   std::to_string(depth),
            salt, reference, got.value());
        EXPECT_FALSE(divergence.has_value())
            << oracle::describe(*divergence) << " (variant "
            << to_string(variant) << ")";
      }
    }
  }
}

}  // namespace
}  // namespace acgpu::pipeline
