#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace acgpu {
namespace {

std::string render(const Table& t) {
  std::ostringstream os;
  t.print(os);
  return os.str();
}

TEST(Table, EmptyPrintsNothing) {
  Table t;
  EXPECT_EQ(render(t), "");
}

TEST(Table, AlignsColumns) {
  Table t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "1000"});
  const std::string out = render(t);
  // Every line has the same width.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  const std::size_t w = line.size();
  EXPECT_EQ(line, "name   value");
  std::getline(is, line);  // rule
  EXPECT_EQ(line, std::string(w, '-'));
}

TEST(Table, RightAlignsNumbers) {
  Table t;
  t.add_row({"x", "1"});
  t.add_row({"y", "1000"});
  const std::string out = render(t);
  EXPECT_NE(out.find("   1\n"), std::string::npos);
  EXPECT_NE(out.find("1000\n"), std::string::npos);
}

TEST(Table, LeftAlignsText) {
  Table t;
  t.add_row({"short", "z"});
  t.add_row({"a-much-longer-cell", "z"});
  const std::string out = render(t);
  EXPECT_NE(out.find("short             "), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3"});
  EXPECT_NO_THROW(render(t));
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumericDetection) {
  Table t;
  // "12.5x" and "50KB" count as numeric-ish (right aligned); "abc" does not.
  t.add_row({"abc", "12.5"});
  t.add_row({"de", "3"});
  const std::string out = render(t);
  EXPECT_NE(out.find("12.5\n"), std::string::npos);
  EXPECT_NE(out.find("   3\n"), std::string::npos);
}

}  // namespace
}  // namespace acgpu
