// Tests for the conformance oracle's adapter layer: registry contents,
// per-adapter agreement on the paper's example, degenerate inputs, and
// salt determinism for the randomized adapters.
#include "oracle/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace acgpu::oracle {
namespace {

CompiledWorkload paper_workload() {
  return CompiledWorkload(
      Workload{"paper", {"he", "she", "his", "hers"},
               "ushers and sheep hide his herbs ushers"});
}

TEST(OracleRegistry, HasAtLeastEightVariantsAndNoDuplicates) {
  auto names = registered_matcher_names();
  EXPECT_GE(names.size(), 8u);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(OracleRegistry, CoversEveryImplementationFamily) {
  const auto& names = registered_matcher_names();
  for (const char* required :
       {"naive", "nfa", "serial", "parallel", "stream", "pfac", "compressed",
        "gpu-global", "gpu-shared", "gpu-compressed", "gpu-pfac"})
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
}

TEST(OracleRegistry, MakeMatcherRoundTripsEveryName) {
  for (const auto& name : registered_matcher_names()) {
    const auto matcher = make_matcher(name);
    ASSERT_NE(matcher, nullptr);
    EXPECT_EQ(matcher->name(), name);
  }
}

TEST(OracleRegistry, UnknownNameThrowsListingValidOnes) {
  try {
    make_matcher("definitely-not-a-matcher");
    FAIL() << "expected acgpu::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("gpu-shared"), std::string::npos);
  }
}

TEST(OracleRegistry, SelectionPicksSubset) {
  const auto subset = make_matchers({"serial", "stream"});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset[0]->name(), "serial");
  EXPECT_EQ(subset[1]->name(), "stream");
  EXPECT_EQ(make_matchers({}).size(), registered_matcher_names().size());
}

TEST(OracleMatchers, AllAgreeWithReferenceOnPaperExample) {
  const CompiledWorkload w = paper_workload();
  const auto reference = reference_matches(w);
  ASSERT_FALSE(reference.empty());
  for (const auto& matcher : make_all_matchers())
    EXPECT_EQ(matcher->run(w, /*salt=*/7), reference) << matcher->name();
}

TEST(OracleMatchers, AllReturnEmptyOnEmptyText) {
  const CompiledWorkload w(Workload{"empty", {"ab", "ba"}, ""});
  for (const auto& matcher : make_all_matchers())
    EXPECT_TRUE(matcher->run(w, 3).empty()) << matcher->name();
}

TEST(OracleMatchers, SingleByteTextAndPattern) {
  const CompiledWorkload w(Workload{"one", {"a"}, "a"});
  const std::vector<ac::Match> expected = {{0, 0}};
  for (const auto& matcher : make_all_matchers())
    EXPECT_EQ(matcher->run(w, 11), expected) << matcher->name();
}

TEST(OracleMatchers, RandomizedAdaptersAreSaltDeterministic) {
  const CompiledWorkload w = paper_workload();
  for (const char* name : {"stream", "chunked", "parallel"}) {
    const auto matcher = make_matcher(name);
    const auto a = matcher->run(w, 123);
    const auto b = matcher->run(w, 123);
    EXPECT_EQ(a, b) << name;
  }
}

TEST(OracleMatchers, StreamAgreesAcrossManySlicings) {
  const CompiledWorkload w = paper_workload();
  const auto reference = reference_matches(w);
  const auto stream = make_matcher("stream");
  for (std::uint64_t salt = 0; salt < 32; ++salt)
    EXPECT_EQ(stream->run(w, salt), reference) << "salt " << salt;
}

TEST(OracleMatchers, PatternLongerThanGpuChunkFloor) {
  // 48 bytes > the adapters' 32-byte chunk floor: they must widen the chunk.
  const std::string pattern(48, 'q');
  std::string text(400, 'x');
  text.replace(30, pattern.size(), pattern);
  text.replace(200, pattern.size(), pattern);
  const CompiledWorkload w(Workload{"long", {pattern}, text});
  const auto reference = reference_matches(w);
  ASSERT_EQ(reference.size(), 2u);
  for (const auto& matcher : make_all_matchers())
    EXPECT_EQ(matcher->run(w, 5), reference) << matcher->name();
}

TEST(OracleCompiledWorkload, RejectsEmptyPatternSet) {
  EXPECT_THROW(CompiledWorkload(Workload{"bad", {}, "text"}), Error);
}

TEST(OracleCompiledWorkload, LazyTablesCompileOnceAndAgree) {
  const CompiledWorkload w = paper_workload();
  const auto& compressed = w.compressed();
  EXPECT_EQ(&compressed, &w.compressed());  // cached
  EXPECT_EQ(compressed.state_count(), w.dfa().state_count());
  const auto& pfac = w.pfac();
  EXPECT_EQ(&pfac, &w.pfac());
  EXPECT_EQ(pfac.max_pattern_length(), w.dfa().max_pattern_length());
}

}  // namespace
}  // namespace acgpu::oracle
