#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "harness/result_cache.h"
#include "util/byte_units.h"
#include "util/error.h"

namespace acgpu::harness {
namespace {

// One tiny sweep shared by all tests in this file (runs the real pipeline:
// corpus -> patterns -> DFA -> serial model -> three simulated kernels).
class SweepTest : public ::testing::Test {
 protected:
  static SweepConfig tiny_config() {
    SweepConfig c;
    c.sizes = {50 * kKiB, 200 * kKiB};
    c.pattern_counts = {20, 200};
    c.cpu_sample_bytes = 50 * kKiB;
    c.device_bytes = 64 * kMiB;
    c.sample_waves = 2;
    // Keep the full 30-SM GTX 285: the paper's shared > global ordering
    // depends on the uncoalesced traffic saturating the memory system,
    // which a cut-down SM count would mask.
    return c;
  }

  static const std::vector<PointResult>& results() {
    static const std::vector<PointResult> r = run_sweep(tiny_config(), nullptr);
    return r;
  }
};

TEST_F(SweepTest, GridIsComplete) {
  EXPECT_EQ(results().size(), 4u);
  for (const auto& r : results()) {
    EXPECT_GT(r.dfa_states, 0u);
    EXPECT_GT(r.serial_seconds, 0.0);
    EXPECT_GT(r.global.seconds, 0.0);
    EXPECT_GT(r.shared.seconds, 0.0);
    EXPECT_GT(r.shared_naive.seconds, 0.0);
    EXPECT_GT(r.match_count, 0u);
  }
}

TEST_F(SweepTest, PaperOrderingHolds) {
  for (const auto& r : results()) {
    // shared < global < serial (the paper's headline ordering).
    EXPECT_LT(r.shared.seconds, r.global.seconds)
        << format_bytes(r.text_bytes) << "/" << r.pattern_count;
    EXPECT_LT(r.global.seconds, r.serial_seconds)
        << format_bytes(r.text_bytes) << "/" << r.pattern_count;
    // Diagonal store beats the naive store.
    EXPECT_LT(r.shared.seconds, r.shared_naive.seconds);
  }
}

TEST_F(SweepTest, SerialModelDegradesWithPatterns) {
  const auto& rs = results();
  // Same size, more patterns -> more serial cycles/byte.
  EXPECT_GT(rs[2].serial_cycles_per_byte, rs[0].serial_cycles_per_byte);
}

TEST_F(SweepTest, DerivedMetricsConsistent) {
  for (const auto& r : results()) {
    EXPECT_NEAR(r.serial_gbps(),
                static_cast<double>(r.text_bytes) * 8 / r.serial_seconds / 1e9, 1e-9);
    EXPECT_NEAR(r.speedup_shared(), r.serial_seconds / r.shared.seconds, 1e-12);
    EXPECT_GE(r.shared.tex_hit_rate, 0.0);
    EXPECT_LE(r.shared.tex_hit_rate, 1.0);
  }
}

TEST_F(SweepTest, CacheRoundTrips) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "acgpu_cache_test";
  fs::create_directories(dir);
  setenv("ACGPU_CACHE_DIR", dir.c_str(), 1);
  const SweepConfig config = tiny_config();
  store_cached(config, results());
  const auto loaded = load_cached(config);
  unsetenv("ACGPU_CACHE_DIR");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), results().size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].text_bytes, results()[i].text_bytes);
    EXPECT_EQ((*loaded)[i].pattern_count, results()[i].pattern_count);
    EXPECT_DOUBLE_EQ((*loaded)[i].serial_seconds, results()[i].serial_seconds);
    EXPECT_DOUBLE_EQ((*loaded)[i].shared.seconds, results()[i].shared.seconds);
    EXPECT_EQ((*loaded)[i].shared.warp_instructions,
              results()[i].shared.warp_instructions);
  }
  fs::remove_all(dir);
}

TEST_F(SweepTest, CacheMissOnDifferentConfig) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "acgpu_cache_test2";
  fs::create_directories(dir);
  setenv("ACGPU_CACHE_DIR", dir.c_str(), 1);
  SweepConfig config = tiny_config();
  store_cached(config, results());
  config.seed += 1;  // different config -> different key -> miss
  EXPECT_FALSE(load_cached(config).has_value());
  unsetenv("ACGPU_CACHE_DIR");
  fs::remove_all(dir);
}

TEST(SweepConfigTest, CacheKeyIsStableAndSensitive) {
  const SweepConfig a = SweepConfig::paper();
  const SweepConfig b = SweepConfig::paper();
  EXPECT_EQ(a.cache_key(), b.cache_key());
  SweepConfig c = SweepConfig::paper();
  c.chunk_bytes = 128;
  EXPECT_NE(a.cache_key(), c.cache_key());
  EXPECT_NE(a.cache_key(), SweepConfig::quick().cache_key());
}

TEST(SweepConfigTest, PaperGridMatchesPaperRanges) {
  const SweepConfig paper = SweepConfig::paper();
  EXPECT_EQ(paper.sizes.front(), 50 * kKiB);
  EXPECT_EQ(paper.sizes.back(), 200 * kMiB);
  EXPECT_EQ(paper.pattern_counts.front(), 100u);
  EXPECT_EQ(paper.pattern_counts.back(), 20000u);
}

TEST(SweepConfigTest, EmptyGridRejected) {
  SweepConfig c = SweepConfig::quick();
  c.sizes.clear();
  EXPECT_THROW(run_sweep(c, nullptr), acgpu::Error);
}

}  // namespace
}  // namespace acgpu::harness
