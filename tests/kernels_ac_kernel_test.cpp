// End-to-end correctness and model-behaviour tests for the two paper
// kernels, run in Functional mode so every block executes.
#include "kernels/ac_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ac/naive_matcher.h"
#include "ac/serial_matcher.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::kernels {
namespace {

struct Fixture {
  gpusim::GpuConfig cfg;
  gpusim::DeviceMemory mem;
  ac::PatternSet patterns;
  ac::Dfa dfa;
  DeviceDfa ddfa;
  gpusim::DevAddr text_addr;
  std::string text;

  Fixture(std::vector<std::string> pats, std::string text_in,
          std::uint32_t num_sms = 4)
      : cfg(gpusim::GpuConfig::gtx285()),
        mem(64 << 20),
        patterns(std::move(pats)),
        dfa(ac::build_dfa(patterns, 8)),
        ddfa(mem, dfa),
        text_addr(0),
        text(std::move(text_in)) {
    cfg.num_sms = num_sms;
    text_addr = upload_text(mem, text);
  }

  AcLaunchOutcome run(Approach approach, StoreScheme scheme,
                      std::uint32_t chunk = 32, std::uint32_t tpb = 64,
                      std::uint32_t capacity = 64) {
    AcLaunchSpec spec;
    spec.approach = approach;
    spec.scheme = scheme;
    spec.chunk_bytes = chunk;
    spec.threads_per_block = tpb;
    spec.match_capacity = capacity;
    spec.sim.mode = gpusim::SimMode::Functional;
    const std::size_t mark = mem.mark();
    auto out = run_ac_kernel(cfg, mem, ddfa, text_addr, text.size(), spec);
    mem.release(mark);
    return out;
  }

  std::vector<ac::Match> expected() const {
    auto m = ac::find_all(dfa, text);
    std::sort(m.begin(), m.end());
    return m;
  }
};

TEST(AcKernel, GlobalOnlyMatchesSerialOnPaperExample) {
  Fixture f({"he", "she", "his", "hers"}, "ushers ushers his sheep hers");
  const auto out = f.run(Approach::kGlobalOnly, StoreScheme::kDiagonal);
  EXPECT_FALSE(out.matches.overflowed);
  EXPECT_EQ(out.matches.matches, f.expected());
}

TEST(AcKernel, SharedDiagonalMatchesSerialOnPaperExample) {
  Fixture f({"he", "she", "his", "hers"}, "ushers ushers his sheep hers");
  const auto out = f.run(Approach::kShared, StoreScheme::kDiagonal);
  EXPECT_EQ(out.matches.matches, f.expected());
}

TEST(AcKernel, SharedNaiveAndSequentialProduceSameMatches) {
  Fixture f({"he", "she", "his", "hers"}, "ushers and sheep hide his herbs");
  const auto expect = f.expected();
  EXPECT_EQ(f.run(Approach::kShared, StoreScheme::kCoalescedNaive).matches.matches,
            expect);
  EXPECT_EQ(f.run(Approach::kShared, StoreScheme::kSequential).matches.matches,
            expect);
}

TEST(AcKernel, MatchesStraddlingChunkAndBlockBoundaries) {
  // chunk 32, tpb 64: block boundary at byte 2048. Place patterns across
  // every kind of boundary.
  std::string text(5000, 'x');
  const std::string needle = "boundary";
  for (std::size_t pos : {30ul, 31ul, 63ul, 64ul, 2040ul, 2047ul, 4090ul})
    text.replace(pos, needle.size(), needle);
  Fixture f({"boundary", "ound"}, text);
  for (auto approach : {Approach::kGlobalOnly, Approach::kShared}) {
    const auto out = f.run(approach, StoreScheme::kDiagonal);
    EXPECT_EQ(out.matches.matches, f.expected()) << to_string(approach);
  }
}

TEST(AcKernel, RaggedTailText) {
  // Text length not a multiple of chunk, block, or word size.
  Fixture f({"ab", "abc"}, workload::make_corpus(3001, 11) + "ab");
  for (auto approach : {Approach::kGlobalOnly, Approach::kShared}) {
    const auto out = f.run(approach, StoreScheme::kDiagonal);
    EXPECT_EQ(out.matches.matches, f.expected()) << to_string(approach);
  }
}

TEST(AcKernel, EnglishCorpusWithExtractedPatterns) {
  const std::string corpus = workload::make_corpus(20000, 77);
  workload::ExtractConfig ec;
  ec.count = 50;
  ec.min_length = 4;
  ec.max_length = 12;
  const ac::PatternSet patterns = workload::extract_patterns(corpus, ec);
  std::vector<std::string> pats(patterns.begin(), patterns.end());
  Fixture f(std::move(pats), corpus);
  ASSERT_GT(f.expected().size(), 0u);  // extracted patterns must occur
  for (auto approach : {Approach::kGlobalOnly, Approach::kShared}) {
    const auto out = f.run(approach, StoreScheme::kDiagonal, 64, 128, 128);
    EXPECT_EQ(out.matches.matches, f.expected()) << to_string(approach);
  }
}

TEST(AcKernel, DenseMatchesBinaryAlphabet) {
  Rng rng(5);
  std::string text(4096, 'a');
  for (auto& c : text) c = rng.next_bool(0.5) ? 'a' : 'b';
  Fixture f({"a", "ab", "ba", "aba", "bb"}, text);
  const auto out = f.run(Approach::kShared, StoreScheme::kDiagonal, 32, 64, 96);
  EXPECT_FALSE(out.matches.overflowed);
  EXPECT_EQ(out.matches.matches, f.expected());
}

TEST(AcKernel, OverflowIsReportedNotSilent) {
  // Capacity 1 with a text full of matches must flag overflow.
  Fixture f({"a"}, std::string(512, 'a'));
  const auto out = f.run(Approach::kShared, StoreScheme::kDiagonal, 32, 64,
                         /*capacity=*/1);
  EXPECT_TRUE(out.matches.overflowed);
  EXPECT_EQ(out.matches.total_reported, 512u);  // counts are still exact
}

TEST(AcKernel, DiagonalEliminatesMatchPhaseConflicts) {
  const std::string corpus = workload::make_corpus(16384, 3);
  Fixture f({"the", "and", "tion"}, corpus);
  const auto naive = f.run(Approach::kShared, StoreScheme::kCoalescedNaive, 64, 128);
  const auto diag = f.run(Approach::kShared, StoreScheme::kDiagonal, 64, 128);
  // The naive layout's matching loads are 16-way conflicts; diagonal is
  // conflict-free except rare boundary effects.
  EXPECT_GT(naive.sim.metrics.shared_conflict_cycles, 0u);
  EXPECT_LT(diag.sim.metrics.shared_conflict_cycles,
            naive.sim.metrics.shared_conflict_cycles / 8);
  EXPECT_LT(diag.sim.cycles, naive.sim.cycles);
}

TEST(AcKernel, SharedApproachCutsGlobalTraffic) {
  const std::string corpus = workload::make_corpus(16384, 4);
  Fixture f({"the", "and"}, corpus);
  const auto global = f.run(Approach::kGlobalOnly, StoreScheme::kDiagonal, 64, 128);
  const auto shared = f.run(Approach::kShared, StoreScheme::kDiagonal, 64, 128);
  // Global-only re-reads every byte with terrible coalescing; shared stages
  // each byte once with coalesced words.
  EXPECT_GT(global.sim.metrics.global_transactions,
            shared.sim.metrics.global_transactions * 4);
  EXPECT_LT(shared.sim.cycles, global.sim.cycles);
}

TEST(AcKernel, SequentialStagingCoalescesWorseThanCooperative) {
  const std::string corpus = workload::make_corpus(16384, 5);
  Fixture f({"qzk"}, corpus);  // rare pattern: staging dominates
  const auto seq = f.run(Approach::kShared, StoreScheme::kSequential, 64, 128);
  const auto coop = f.run(Approach::kShared, StoreScheme::kDiagonal, 64, 128);
  EXPECT_GT(seq.sim.metrics.global_transactions,
            coop.sim.metrics.global_transactions * 2);
}

TEST(AcKernel, ValidatesSpec) {
  Fixture f({"abcdefgh"}, "some text with abcdefgh inside");
  AcLaunchSpec spec;
  spec.chunk_bytes = 30;  // not a multiple of 4
  EXPECT_THROW(run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr, f.text.size(), spec),
               Error);
  spec.chunk_bytes = 4;  // overlap (7) would exceed the chunk
  EXPECT_THROW(run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr, f.text.size(), spec),
               Error);
  spec.chunk_bytes = 64;
  spec.threads_per_block = 0;
  EXPECT_THROW(run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr, f.text.size(), spec),
               Error);
}

TEST(AcKernel, UploadTextPadsForWordLoads) {
  gpusim::DeviceMemory mem(1 << 16);
  const auto addr = upload_text(mem, "abc");
  EXPECT_EQ(mem.load_u8(addr + 0), 'a');
  EXPECT_EQ(mem.load_u8(addr + 2), 'c');
  // Whole-word load at the text end must not fault.
  EXPECT_NO_THROW(mem.load_u32(addr + 3));
}

TEST(AcKernel, TimedModeProducesStableExtrapolation) {
  const std::string corpus = workload::make_corpus(2 << 20, 9);
  Fixture f({"the", "and", "ing"}, corpus, /*num_sms=*/30);
  AcLaunchSpec spec;
  spec.chunk_bytes = 64;
  spec.threads_per_block = 128;
  spec.sim.mode = gpusim::SimMode::Timed;
  spec.sim.sample_waves = 2;
  const std::size_t mark = f.mem.mark();
  const auto timed = run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr,
                                   f.text.size(), spec);
  f.mem.release(mark);
  spec.sim.mode = gpusim::SimMode::Functional;
  const auto full = run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr,
                                  f.text.size(), spec);
  EXPECT_LT(timed.sim.simulated_blocks, full.sim.simulated_blocks);
  // Extrapolated timing within 30% of the fully simulated makespan.
  EXPECT_NEAR(timed.sim.cycles / full.sim.cycles, 1.0, 0.3);
}

}  // namespace
}  // namespace acgpu::kernels
