// FlightRecorder: wrap-around retention, lock-free concurrent writers,
// dumps taken while writers are live (the TSan target), ring exhaustion
// accounting, and the postmortem JSON round trip.
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/flight_recorder.h"
#include "telemetry/json.h"
#include "telemetry/metrics_registry.h"

namespace acgpu::telemetry {
namespace {

TEST(FlightRecorderTest, RecordsAndDecodesFields) {
  FlightRecorder rec;
  rec.record(FlightEventKind::kAdmission, /*shard=*/3, /*a=*/42, /*b=*/256,
             /*code=*/7);
  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kAdmission);
  EXPECT_EQ(events[0].shard, 3u);
  EXPECT_EQ(events[0].a, 42u);
  EXPECT_EQ(events[0].b, 256u);
  EXPECT_EQ(events[0].code, 7u);
  EXPECT_GT(events[0].t_ns, 0u);
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorderTest, WrapAroundKeepsTheNewestEvents) {
  FlightRecorderOptions opt;
  opt.ring_capacity = 8;
  FlightRecorder rec(opt);
  for (std::uint64_t i = 0; i < 20; ++i)
    rec.record(FlightEventKind::kMark, 0, /*a=*/i);
  EXPECT_EQ(rec.recorded(), 20u);

  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  // The oldest 12 were overwritten; the survivors are 12..19 in order.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].a, 12 + i);
}

TEST(FlightRecorderTest, CapacityRoundsUpToAPowerOfTwo) {
  FlightRecorderOptions opt;
  opt.ring_capacity = 5;  // -> 8
  FlightRecorder rec(opt);
  for (std::uint64_t i = 0; i < 8; ++i)
    rec.record(FlightEventKind::kMark, 0, i);
  EXPECT_EQ(rec.events().size(), 8u);
}

TEST(FlightRecorderTest, ConcurrentWritersLoseNothing) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  FlightRecorderOptions opt;
  opt.ring_capacity = 1u << 15;  // deep enough to retain everything
  opt.max_threads = kThreads;
  FlightRecorder rec(opt);

  std::vector<std::thread> writers;
  for (std::uint32_t t = 0; t < kThreads; ++t)
    writers.emplace_back([&rec, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        rec.record(FlightEventKind::kMark, t, /*a=*/i);
    });
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<FlightEvent> events = rec.events();
  EXPECT_EQ(events.size(), kThreads * kPerThread);
  // Per writing thread, payloads must come back in program order.
  std::vector<std::uint64_t> next(kThreads, 0);
  std::vector<std::uint64_t> seen(kThreads, 0);
  for (const FlightEvent& e : events) {
    ASSERT_LT(e.shard, kThreads);
    EXPECT_GE(e.a, next[e.shard]);
    next[e.shard] = e.a;
    ++seen[e.shard];
  }
  for (std::uint32_t t = 0; t < kThreads; ++t) EXPECT_EQ(seen[t], kPerThread);
}

TEST(FlightRecorderTest, DumpDuringConcurrentWritesIsSafe) {
  // The dump-during-failure case: writers keep appending (wrapping their
  // rings) while a reader repeatedly snapshots and serializes. Lapped or
  // torn slots must be discarded, never crash or corrupt the JSON. Run
  // under -DACGPU_TSAN=ON this is the recorder's race proof.
  FlightRecorderOptions opt;
  opt.ring_capacity = 64;  // small: force constant wrap-around
  FlightRecorder rec(opt);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::uint32_t t = 0; t < 3; ++t)
    writers.emplace_back([&rec, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed))
        rec.record(FlightEventKind::kBatchIssue, t, i++);
    });

  for (int round = 0; round < 50; ++round) {
    std::ostringstream out;
    rec.write_postmortem(out, "mid-flight dump");
    const auto doc = parse_json(out.str());
    ASSERT_TRUE(doc.has_value()) << "round " << round;
    const JsonValue* pm = doc->find("postmortem");
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->find("reason")->string(), "mid-flight dump");
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

TEST(FlightRecorderTest, ThreadsBeyondMaxDropAndAreCounted) {
  FlightRecorderOptions opt;
  opt.max_threads = 1;
  FlightRecorder rec(opt);
  rec.record(FlightEventKind::kMark);  // this thread takes the only ring
  std::thread extra([&rec] {
    for (int i = 0; i < 10; ++i) rec.record(FlightEventKind::kMark);
  });
  extra.join();
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.dropped(), 10u);
  EXPECT_EQ(rec.events().size(), 1u);
}

TEST(FlightRecorderTest, PostmortemJsonRoundTripsWithMetrics) {
  FlightRecorder rec;
  rec.record(FlightEventKind::kAdmission, 1, 7, 512);
  rec.record(FlightEventKind::kShardFailure, 1);

  MetricsRegistry registry;
  registry.counter("router.feeds").add(99);
  const MetricsSnapshot snap = registry.snapshot();

  std::ostringstream out;
  rec.write_postmortem(out, "shard 1 marked failed", &snap);
  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());

  const JsonValue* pm = doc->find("postmortem");
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->find("reason")->string(), "shard 1 marked failed");
  EXPECT_EQ(pm->number_at("recorded"), 2.0);
  EXPECT_EQ(pm->number_at("dropped"), 0.0);

  const JsonValue* events = pm->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 2u);
  EXPECT_EQ(events->array()[0].find("kind")->string(), "admission");
  EXPECT_EQ(events->array()[0].number_at("a"), 7.0);
  EXPECT_EQ(events->array()[1].find("kind")->string(), "shard_failure");
  EXPECT_EQ(events->array()[1].number_at("shard"), 1.0);

  const JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->number_at("router.feeds"), 99.0);
}

TEST(FlightRecorderTest, PostmortemWithoutMetricsOmitsTheSection) {
  FlightRecorder rec;
  rec.record(FlightEventKind::kMark);
  std::ostringstream out;
  rec.write_postmortem(out, "manual dump");
  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(doc->find("postmortem"), nullptr);
  EXPECT_EQ(doc->find("metrics"), nullptr);
}

}  // namespace
}  // namespace acgpu::telemetry
