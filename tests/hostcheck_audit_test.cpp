// End-to-end audit tests: the REAL pipeline and serve layers, driven under
// the Recorder over oracle workloads, must be hazard-free on conformant
// staging geometries — the pipeline's lease/wait_until handshake orders
// every conflicting access by construction, and the audit proves it (the
// broken-schedule tests prove the auditor is not simply blind).
#include "hostcheck/audit.h"

#include <gtest/gtest.h>

#include "hostcheck/recorder.h"
#include "oracle/workload_gen.h"
#include "pipeline/engine.h"
#include "telemetry/metrics_registry.h"

namespace acgpu::hostcheck {
namespace {

oracle::CompiledWorkload workload(std::uint64_t seed, std::uint64_t i) {
  return oracle::CompiledWorkload(oracle::generate_workload(seed, i));
}

TEST(HostcheckAudit, ConfigNamesRoundTrip) {
  EXPECT_EQ(to_string(HostAuditConfig{2, 4, true}), "s2-d4-split");
  EXPECT_EQ(to_string(HostAuditConfig{8, 1, false}), "s8-d1-shared");
  EXPECT_EQ(default_config_matrix().size(), 4u * 3u * 2u);
}

TEST(HostcheckAudit, ConformantPipelineAuditsCleanAcrossGeometries) {
  const oracle::CompiledWorkload w = workload(11, 0);
  for (const HostAuditConfig& config :
       {HostAuditConfig{1, 1, true}, HostAuditConfig{2, 2, true},
        HostAuditConfig{4, 2, false}, HostAuditConfig{8, 8, true}}) {
    const HostAuditOutcome outcome = audit_pipeline(w, config);
    EXPECT_TRUE(outcome.report.clean())
        << to_string(config) << ": " << outcome.report.total_hazards()
        << " hazard(s)";
    EXPECT_TRUE(outcome.matches_ok) << to_string(config);
    // The audit saw real work: ops on the timeline, annotated accesses, and
    // upload + readback leases all balanced by releases.
    EXPECT_GT(outcome.report.ops, 0u) << to_string(config);
    EXPECT_GT(outcome.report.accesses, 0u) << to_string(config);
    EXPECT_GT(outcome.report.leases, 0u) << to_string(config);
    EXPECT_EQ(outcome.report.leases, outcome.report.releases)
        << to_string(config);
  }
}

TEST(HostcheckAudit, RepeatedScansOnOneEngineStayClean) {
  // Back-to-back scans recycle the device arena, so the second scan's pools
  // land on the first scan's addresses — the analyzer must attribute each
  // access to the pool that is live at that point, not the dead one.
  const oracle::CompiledWorkload w = workload(13, 1);
  Recorder recorder;
  EngineOptions eo;
  eo.batch_bytes = 1024;
  eo.match_capacity = 4096;
  eo.host_observer = &recorder;
  DeviceOptions dopt;
  dopt.host_observer = &recorder;
  Result<Device> device = Device::create(dopt);
  ASSERT_TRUE(device.is_ok()) << device.status().message();
  Result<Engine> engine = Engine::create(device.value(), w.patterns(), eo);
  ASSERT_TRUE(engine.is_ok()) << engine.status().message();
  for (int scan = 0; scan < 3; ++scan)
    ASSERT_TRUE(engine.value().scan(w.text()).is_ok());
  const HostAuditReport report = analyze(recorder.trace());
  EXPECT_TRUE(report.clean()) << report.total_hazards() << " hazard(s)";
  EXPECT_EQ(report.sims, 3u);
}

TEST(HostcheckAudit, ServeLayerAuditsCleanAndExercisesTheLocks) {
  const HostAuditOutcome outcome = audit_serve(workload(11, 2));
  EXPECT_TRUE(outcome.report.clean())
      << outcome.report.total_hazards() << " hazard(s)";
  EXPECT_TRUE(outcome.matches_ok);
  // The tracked serve/scheduler/session-manager mutexes really recorded:
  // lock events happened and nesting produced order edges — with no cycle.
  EXPECT_GT(outcome.report.lock_events, 0u);
  EXPECT_GT(outcome.report.mutexes, 0u);
  EXPECT_GT(outcome.report.lock_edges, 0u);
  EXPECT_EQ(outcome.report.count(HazardKind::kLockOrderCycle), 0u);
}

TEST(HostcheckAudit, SweepMergesAcrossWorkloadsAndIncludesServe) {
  const std::vector<HostAuditConfig> configs = {HostAuditConfig{2, 2, true}};
  const std::vector<HostSweepResult> results =
      audit_conformance(/*seed=*/11, /*iterations=*/2, configs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "pipeline s2-d2-split");
  EXPECT_EQ(results[1].name, "serve");
  for (const HostSweepResult& r : results) {
    EXPECT_EQ(r.workloads, 2u) << r.name;
    EXPECT_EQ(r.mismatches, 0u) << r.name;
    EXPECT_TRUE(r.report.clean()) << r.name;
  }
}

TEST(HostcheckAudit, PublishesHostcheckSeries) {
  const HostAuditOutcome outcome =
      audit_pipeline(workload(11, 0), HostAuditConfig{2, 2, true});
  telemetry::MetricsRegistry registry;
  publish(outcome.report, registry);
  const telemetry::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.value("hostcheck.hazards").has_value());
  EXPECT_EQ(snapshot.value("hostcheck.hazards"), 0.0);
  EXPECT_TRUE(snapshot.value("hostcheck.ops").has_value());
  EXPECT_TRUE(snapshot.value("hostcheck.hazard.use_after_release").has_value());
}

}  // namespace
}  // namespace acgpu::hostcheck
