// Serialization robustness: loading any truncated or bit-flipped DFA/STT
// stream must throw acgpu::Error (never crash, never return garbage
// silently for structurally invalid headers).
#include <gtest/gtest.h>

#include <sstream>

#include "ac/dfa.h"
#include "ac/serial_matcher.h"
#include "util/error.h"
#include "util/rng.h"

namespace acgpu::ac {
namespace {

std::string serialized_paper_dfa() {
  const Dfa dfa = build_dfa(PatternSet({"he", "she", "his", "hers"}), 8);
  std::stringstream ss;
  dfa.save(ss);
  return ss.str();
}

TEST(SerializationFuzz, EveryTruncationThrows) {
  const std::string full = serialized_paper_dfa();
  // Sweep cut points (every byte near the header, sampled beyond).
  for (std::size_t cut = 0; cut < full.size(); cut += (cut < 64 ? 1 : 997)) {
    std::stringstream ss(full.substr(0, cut));
    EXPECT_THROW(Dfa::load(ss), Error) << "cut at " << cut;
  }
}

TEST(SerializationFuzz, HeaderBitFlipsThrowOrRoundTrip) {
  const std::string full = serialized_paper_dfa();
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    std::string corrupted = full;
    // Flip a bit in the first 24 bytes: magic + STT header. Any change to
    // the magic or to the geometry must be caught (geometry changes make
    // the body size mismatch -> truncated-read error).
    const std::size_t pos = rng.next_below(24);
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << rng.next_below(8)));
    if (corrupted == full) continue;
    std::stringstream ss(corrupted);
    try {
      const Dfa dfa = Dfa::load(ss);
      // A flip that enlarges padding-only pitch could load; the DFA must
      // still be self-consistent enough to walk without faulting.
      (void)dfa.next(0, 'h');
    } catch (const Error&) {
      // expected for almost all flips
    }
  }
}

TEST(SerializationFuzz, BodyCorruptionKeepsInvariantsCheckable) {
  // Corrupting the body may or may not be detectable (raw table data), but
  // it must never produce out-of-contract behaviour in load itself.
  const std::string full = serialized_paper_dfa();
  Rng rng(2025);
  for (int round = 0; round < 100; ++round) {
    std::string corrupted = full;
    const std::size_t pos = 24 + rng.next_below(corrupted.size() - 24);
    corrupted[pos] = static_cast<char>(rng.next_below(256));
    std::stringstream ss(corrupted);
    try {
      (void)Dfa::load(ss);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST(SerializationFuzz, SttMatrixTruncationThrows) {
  SttMatrix m(7, 8);
  m.at(3, 100) = 42;
  std::stringstream ss;
  m.save(ss);
  const std::string full = ss.str();
  for (std::size_t cut : {0ul, 4ul, 8ul, 12ul, 15ul, full.size() - 1}) {
    std::stringstream cut_ss(full.substr(0, cut));
    EXPECT_THROW(SttMatrix::load(cut_ss), Error) << "cut " << cut;
  }
}

TEST(SerializationFuzz, RepeatedSaveLoadIsStable) {
  const Dfa original = build_dfa(PatternSet({"abc", "bcd", "cde"}), 8);
  std::stringstream s1;
  original.save(s1);
  const Dfa once = Dfa::load(s1);
  std::stringstream s2;
  once.save(s2);
  EXPECT_EQ(s1.str(), s2.str());
}

}  // namespace
}  // namespace acgpu::ac
