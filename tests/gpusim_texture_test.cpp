#include "gpusim/texture.h"
#include "gpusim/texture_cache.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

TEST(Texture2D, FetchReadsDeviceMemory) {
  DeviceMemory mem(4096);
  const DevAddr base = mem.alloc(4 * 4 * 4);
  // 4x4 int32 matrix, element (x,y) = y*10 + x.
  for (std::uint32_t y = 0; y < 4; ++y)
    for (std::uint32_t x = 0; x < 4; ++x)
      mem.store_i32(base + (y * 4 + x) * 4, static_cast<std::int32_t>(y * 10 + x));
  Texture2D tex(&mem, base, 4, 4, 4);
  EXPECT_EQ(tex.fetch(0, 0), 0);
  EXPECT_EQ(tex.fetch(3, 0), 3);
  EXPECT_EQ(tex.fetch(0, 2), 20);
  EXPECT_EQ(tex.fetch(3, 3), 33);
}

TEST(Texture2D, PitchSkipsPadding) {
  DeviceMemory mem(4096);
  const DevAddr base = mem.alloc(2 * 8 * 4);  // 2 rows, pitch 8, width 3
  mem.store_i32(base + 0, 1);
  mem.store_i32(base + 8 * 4, 2);  // row 1, col 0
  Texture2D tex(&mem, base, 3, 2, 8);
  EXPECT_EQ(tex.fetch(0, 0), 1);
  EXPECT_EQ(tex.fetch(0, 1), 2);
  EXPECT_EQ(tex.addr_of(0, 1) - tex.addr_of(0, 0), 32u);
}

TEST(Texture2D, OutOfBoundsFetchThrows) {
  DeviceMemory mem(4096);
  const DevAddr base = mem.alloc(64);
  Texture2D tex(&mem, base, 4, 4, 4);
  EXPECT_THROW(tex.fetch(4, 0), Error);
  EXPECT_THROW(tex.fetch(0, 4), Error);
}

TEST(Texture2D, ValidatesBindingGeometry) {
  DeviceMemory mem(256);
  const DevAddr base = mem.alloc(64);
  EXPECT_THROW(Texture2D(&mem, base, 8, 4, 4), Error);   // pitch < width
  EXPECT_THROW(Texture2D(&mem, base, 0, 4, 4), Error);   // empty
  EXPECT_THROW(Texture2D(&mem, base, 64, 64, 64), Error);  // exceeds memory
}

TEST(Texture2D, DefaultIsUnbound) {
  Texture2D tex;
  EXPECT_FALSE(tex.bound());
}

TEST(TextureCache, HitAfterFill) {
  TextureCache cache(1024, 32, 4);
  EXPECT_FALSE(cache.access(100));
  EXPECT_TRUE(cache.access(100));
  EXPECT_TRUE(cache.access(96));   // same 32B line
  EXPECT_FALSE(cache.access(128)); // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(TextureCache, ContainsDoesNotFill) {
  TextureCache cache(1024, 32, 4);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.contains(0));
}

TEST(TextureCache, LruEvictionWithinSet) {
  // 4 sets of 2 ways, 32B lines: lines 0, 4, 8 all map to set 0.
  TextureCache cache(256, 32, 2);
  ASSERT_EQ(cache.sets(), 4u);
  cache.access(0 * 32);
  cache.access(4 * 32);
  cache.access(0 * 32);      // refresh line 0: line 4 is now LRU
  cache.access(8 * 32);      // evicts line 4
  EXPECT_TRUE(cache.contains(0 * 32));
  EXPECT_FALSE(cache.contains(4 * 32));
  EXPECT_TRUE(cache.contains(8 * 32));
}

TEST(TextureCache, CapacityWorkingSetAllHits) {
  TextureCache cache(1024, 32, 4);  // 32 lines
  for (int rep = 0; rep < 3; ++rep)
    for (DevAddr line = 0; line < 32; ++line) cache.access(line * 32);
  EXPECT_EQ(cache.misses(), 32u);
  EXPECT_EQ(cache.hits(), 64u);
}

TEST(TextureCache, ThrashingWorkingSetMisses) {
  TextureCache cache(256, 32, 2);  // 8 lines capacity
  // Cycle 24 lines: with LRU every access misses.
  for (int rep = 0; rep < 2; ++rep)
    for (DevAddr line = 0; line < 24; ++line) cache.access(line * 32);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TextureCache, ClearResets) {
  TextureCache cache(256, 32, 2);
  cache.access(0);
  cache.clear();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

TEST(TextureCache, ValidatesGeometry) {
  EXPECT_THROW(TextureCache(64, 33, 2), Error);   // non-power-of-two line
  EXPECT_THROW(TextureCache(64, 32, 0), Error);   // zero assoc
  EXPECT_THROW(TextureCache(32, 32, 2), Error);   // can't hold one set
}

}  // namespace
}  // namespace acgpu::gpusim
