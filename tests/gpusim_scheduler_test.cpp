#include "gpusim/scheduler.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/launcher.h"
#include "util/error.h"

namespace acgpu::gpusim {
namespace {

GpuConfig small_config() {
  GpuConfig cfg = GpuConfig::gtx285();
  cfg.num_sms = 2;
  return cfg;
}

TEST(Scheduler, ComputeOnlyKernelCompletes) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  LaunchDims dims{4, 64, 0};
  auto result = launch(cfg, mem, nullptr, dims, [](Warp& w) -> WarpTask {
    co_await w.compute(10);
    co_await w.compute(5);
  });
  EXPECT_GT(result.cycles, 0.0);
  EXPECT_EQ(result.metrics.blocks_completed, 4u);
  EXPECT_EQ(result.metrics.warps_completed, 8u);  // 64 threads = 2 warps/block
  // 15 instructions per warp, 8 warps.
  EXPECT_EQ(result.metrics.warp_instructions, 15u * 8);
}

TEST(Scheduler, GlobalLoadMovesData) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  const DevAddr src = mem.alloc(128);
  const DevAddr dst = mem.alloc(128);
  for (std::uint32_t i = 0; i < 32; ++i) mem.store_u32(src + i * 4, i * 7);

  LaunchDims dims{1, 32, 0};
  auto result = launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = src + l * 4;
    co_await w.global_load_u32();
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      w.addr[l] = dst + l * 4;
      w.value[l] += 1;
    }
    co_await w.global_store_u32();
  });
  for (std::uint32_t i = 0; i < 32; ++i)
    EXPECT_EQ(mem.load_u32(dst + i * 4), i * 7 + 1);
  EXPECT_EQ(result.metrics.global_requests, 2u);
  EXPECT_EQ(result.metrics.global_transactions, 2u);  // both fully coalesced
  // Load latency must appear in the makespan.
  EXPECT_GE(result.cycles, cfg.global_latency_cycles);
}

TEST(Scheduler, UncoalescedLoadCostsMoreTransactions) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(1 << 20);
  const DevAddr src = mem.alloc(32 * 4096);
  LaunchDims dims{1, 32, 0};
  auto result = launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = src + l * 4096;
    co_await w.global_load_u32();
  });
  EXPECT_EQ(result.metrics.global_transactions, 32u);
}

TEST(Scheduler, SharedMemoryThroughBarrier) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(8192);
  const DevAddr out = mem.alloc(512);
  // Two warps per block: warp 0 writes shared, warp 1 reads it after the
  // barrier and stores to global — data must flow across warps.
  LaunchDims dims{1, 64, 1024};
  auto result = launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
    if (w.warp_in_block == 0) {
      w.mask_all();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) {
        w.addr[l] = l * 4;
        w.value[l] = 1000 + l;
      }
      co_await w.shared_store_u32();
    }
    co_await w.barrier();
    if (w.warp_in_block == 1) {
      w.mask_all();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = l * 4;
      co_await w.shared_load_u32();
      w.mask_all();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = out + l * 4;
      co_await w.global_store_u32();
    }
  });
  for (std::uint32_t l = 0; l < 32; ++l)
    EXPECT_EQ(mem.load_u32(out + l * 4), 1000 + l);
  EXPECT_EQ(result.metrics.barriers, 2u);  // one arrival per warp
}

TEST(Scheduler, BankConflictsSlowSharedAccess) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  LaunchDims dims{1, 32, 4096};

  auto run_with_stride = [&](std::uint32_t stride_words) {
    return launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
      for (int rep = 0; rep < 50; ++rep) {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          w.addr[l] = (l * stride_words % 1024) * 4;
        co_await w.shared_load_u32();
      }
    });
  };
  const auto free = run_with_stride(1);    // conflict-free
  const auto bad = run_with_stride(16);    // 16-way conflicts
  EXPECT_EQ(free.metrics.shared_conflict_cycles, 0u);
  EXPECT_GT(bad.metrics.shared_conflict_cycles, 0u);
  EXPECT_GT(bad.cycles, free.cycles * 4);
}

TEST(Scheduler, TextureFetchesAndCacheCounters) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(1 << 16);
  const DevAddr base = mem.alloc(64 * 64 * 4);
  for (std::uint32_t y = 0; y < 64; ++y)
    for (std::uint32_t x = 0; x < 64; ++x)
      mem.store_i32(base + (y * 64 + x) * 4, static_cast<std::int32_t>(x + y));
  Texture2D tex(&mem, base, 64, 64, 64);
  const DevAddr out = mem.alloc(128);

  LaunchDims dims{1, 32, 0};
  auto result = launch(cfg, mem, &tex, dims, [=](Warp& w) -> WarpTask {
    for (int rep = 0; rep < 4; ++rep) {
      w.mask_all();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) {
        w.tex_x[l] = l;
        w.tex_y[l] = 3;
      }
      co_await w.tex_fetch();
    }
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = out + l * 4;
    co_await w.global_store_u32();
  });
  for (std::uint32_t l = 0; l < 32; ++l)
    EXPECT_EQ(mem.load_u32(out + l * 4), l + 3);
  EXPECT_EQ(result.metrics.tex_requests, 4u);
  EXPECT_EQ(result.metrics.tex_lane_fetches, 4u * 32);
  // 32 texels * 4B = 128 bytes = 4 cache lines; first pass misses, rest hit.
  EXPECT_EQ(result.metrics.tex_misses, 4u);
  EXPECT_GT(result.metrics.tex_hit_rate(), 0.9);
}

TEST(Scheduler, TextureFetchWithoutBindingThrows) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  LaunchDims dims{1, 32, 0};
  EXPECT_THROW(launch(cfg, mem, nullptr, dims,
                      [](Warp& w) -> WarpTask {
                        w.mask_all();
                        co_await w.tex_fetch();
                      }),
               Error);
}

TEST(Scheduler, MismatchedBarrierIsDetected) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  LaunchDims dims{1, 64, 256};  // two warps, only warp 0 hits the barrier
  EXPECT_THROW(launch(cfg, mem, nullptr, dims,
                      [](Warp& w) -> WarpTask {
                        if (w.warp_in_block == 0) co_await w.barrier();
                        co_await w.compute(1);
                      }),
               Error);
}

TEST(Scheduler, KernelExceptionPropagates) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  LaunchDims dims{1, 32, 0};
  EXPECT_THROW(launch(cfg, mem, nullptr, dims,
                      [](Warp& w) -> WarpTask {
                        co_await w.compute(1);
                        throw Error("kernel bug");
                      }),
               Error);
}

TEST(Scheduler, TailWarpHasPartialLanes) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  const DevAddr out = mem.alloc(256);
  LaunchDims dims{1, 40, 0};  // 1 full warp + 8-lane tail warp
  launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      w.addr[l] = out + w.thread_in_block(l) * 4;
      w.value[l] = 1;
    }
    co_await w.global_store_u32();
  });
  std::uint32_t stored = 0;
  for (std::uint32_t t = 0; t < 64; ++t) stored += mem.load_u32(out + t * 4);
  EXPECT_EQ(stored, 40u);
}

TEST(Launcher, FunctionalModeRunsEveryBlock) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(1 << 16);
  const DevAddr out = mem.alloc(4096);
  LaunchDims dims{100, 32, 0};
  LaunchOptions opt;
  opt.mode = SimMode::Functional;
  auto result = launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
    w.mask_none();
    w.mask[0] = true;
    w.addr[0] = out + w.block_id * 4;
    w.value[0] = 1;
    co_await w.global_store_u32();
  }, opt);
  EXPECT_EQ(result.simulated_blocks, 100u);
  EXPECT_DOUBLE_EQ(result.scale(), 1.0);
  for (std::uint64_t b = 0; b < 100; ++b) EXPECT_EQ(mem.load_u32(out + b * 4), 1u);
}

TEST(Launcher, TimedModeSamplesAndExtrapolates) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(1 << 16);
  LaunchDims dims{10000, 64, 0};
  LaunchOptions opt;
  opt.mode = SimMode::Timed;
  opt.sample_waves = 2;
  auto result = launch(cfg, mem, nullptr, dims, [](Warp& w) -> WarpTask {
    co_await w.compute(20);
  }, opt);
  EXPECT_LT(result.simulated_blocks, 10000u);
  EXPECT_EQ(result.grid_blocks, 10000u);
  EXPECT_GT(result.scale(), 1.0);
  EXPECT_NEAR(result.cycles, result.sim_makespan_cycles * result.scale(), 1e-6);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Launcher, ExtrapolationIsRoughlyLinearInGridSize) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(1 << 16);
  auto time_for = [&](std::uint64_t blocks) {
    LaunchDims dims{blocks, 64, 0};
    return launch(cfg, mem, nullptr, dims, [](Warp& w) -> WarpTask {
      for (int i = 0; i < 10; ++i) co_await w.compute(10);
    }).cycles;
  };
  const double t1 = time_for(1000);
  const double t2 = time_for(2000);
  EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

TEST(Scheduler, AsyncLoadOverlapsCompute) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(8192);
  const DevAddr src = mem.alloc(256);
  const DevAddr dst = mem.alloc(256);
  for (std::uint32_t i = 0; i < 32; ++i) mem.store_u32(src + i * 4, i + 100);

  LaunchDims dims{1, 32, 0};
  auto run = [&](bool async) {
    return launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
      w.mask_all();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = src + l * 4;
      if (async) {
        co_await w.global_load_u32_async();
        co_await w.compute(200);  // 800 cycles of useful work under the load
        co_await w.async_wait();
      } else {
        co_await w.global_load_u32();
        co_await w.compute(200);
      }
      w.mask_all();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) {
        w.addr[l] = dst + l * 4;
        w.value[l] += 1;
      }
      co_await w.global_store_u32();
    });
  };
  const auto blocking = run(false);
  for (std::uint32_t i = 0; i < 32; ++i)
    EXPECT_EQ(mem.load_u32(dst + i * 4), i + 101);
  const auto overlapped = run(true);
  for (std::uint32_t i = 0; i < 32; ++i)
    EXPECT_EQ(mem.load_u32(dst + i * 4), i + 101);  // async data flows too
  // 200 instructions at 4 cycles cover most of the 450-cycle latency.
  EXPECT_LT(overlapped.cycles, blocking.cycles - 300);
}

TEST(Scheduler, AsyncWaitWithoutLoadThrows) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  LaunchDims dims{1, 32, 0};
  EXPECT_THROW(launch(cfg, mem, nullptr, dims,
                      [](Warp& w) -> WarpTask {
                        w.mask_all();
                        co_await w.async_wait();
                      }),
               Error);
}

TEST(Scheduler, DoubleAsyncIssueThrows) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(4096);
  const DevAddr src = mem.alloc(256);
  LaunchDims dims{1, 32, 0};
  EXPECT_THROW(launch(cfg, mem, nullptr, dims,
                      [=](Warp& w) -> WarpTask {
                        w.mask_all();
                        for (std::uint32_t l = 0; l < w.lane_count; ++l)
                          w.addr[l] = src + l * 4;
                        co_await w.global_load_u32_async();
                        co_await w.global_load_u32_async();
                      }),
               Error);
}

TEST(Scheduler, AsyncValuePreservedAcrossOtherLoads) {
  GpuConfig cfg = small_config();
  DeviceMemory mem(8192);
  const DevAddr a = mem.alloc(256);
  const DevAddr b = mem.alloc(256);
  const DevAddr dst = mem.alloc(256);
  for (std::uint32_t i = 0; i < 32; ++i) {
    mem.store_u32(a + i * 4, i + 1000);
    mem.store_u32(b + i * 4, 7);
  }
  LaunchDims dims{1, 32, 0};
  launch(cfg, mem, nullptr, dims, [=](Warp& w) -> WarpTask {
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = a + l * 4;
    co_await w.global_load_u32_async();
    // A blocking load in between must not clobber the in-flight values.
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = b + l * 4;
    co_await w.global_load_u32();
    co_await w.async_wait();
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = dst + l * 4;
    co_await w.global_store_u32();
  });
  for (std::uint32_t i = 0; i < 32; ++i)
    EXPECT_EQ(mem.load_u32(dst + i * 4), i + 1000);
}

TEST(GpuConfig, OccupancyRules) {
  const GpuConfig cfg = GpuConfig::gtx285();
  // Thread-limited: 1024 / 256 = 4 blocks.
  EXPECT_EQ(cfg.occupancy_blocks(256, 0), 4u);
  // Shared-limited: 16KB / 9KB = 1 block.
  EXPECT_EQ(cfg.occupancy_blocks(128, 9 * 1024), 1u);
  // Block-count-limited: tiny blocks cap at 8.
  EXPECT_EQ(cfg.occupancy_blocks(32, 0), 8u);
  EXPECT_THROW(cfg.occupancy_blocks(0, 0), Error);
  EXPECT_THROW(cfg.occupancy_blocks(2048, 0), Error);
  EXPECT_THROW(cfg.occupancy_blocks(32, 64 * 1024), Error);
}

TEST(GpuConfig, SecondsConversion) {
  const GpuConfig cfg = GpuConfig::gtx285();
  EXPECT_NEAR(cfg.seconds(1.476e9), 1.0, 1e-9);
}

TEST(Metrics, AccumulateAndPrint) {
  Metrics a, b;
  a.global_transactions = 5;
  a.tex_lane_fetches = 10;
  a.tex_misses = 2;
  b.global_transactions = 7;
  a += b;
  EXPECT_EQ(a.global_transactions, 12u);
  EXPECT_NEAR(a.tex_hit_rate(), 0.8, 1e-12);
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("gmem_txn=12"), std::string::npos);
}

}  // namespace
}  // namespace acgpu::gpusim
