// telemetry::Logger: severity filtering, per-key burst budgets, the
// once-per-lifetime default that replaces the old static stderr guards, and
// window re-arm with suppression reporting.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/logger.h"

namespace acgpu::telemetry {
namespace {

struct Captured {
  LogSeverity severity;
  std::string key;
  std::string message;
};

LoggerOptions capture_into(std::vector<Captured>& sink) {
  LoggerOptions opt;
  opt.sink = [&sink](LogSeverity sev, std::string_view key,
                     std::string_view message) {
    sink.push_back({sev, std::string(key), std::string(message)});
  };
  return opt;
}

TEST(LoggerTest, FiltersBelowMinSeverity) {
  std::vector<Captured> out;
  LoggerOptions opt = capture_into(out);
  opt.min_severity = LogSeverity::kWarn;
  Logger log(opt);

  log.debug("a.key", "quiet");
  log.info("a.key", "quiet");
  log.warn("a.key", "loud");
  log.error("b.key", "loud");

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].severity, LogSeverity::kWarn);
  EXPECT_EQ(out[1].severity, LogSeverity::kError);
  EXPECT_EQ(log.stats().filtered, 2u);
  EXPECT_EQ(log.stats().emitted, 2u);
  // Filtered messages never count against the key's budget.
  EXPECT_EQ(log.suppressed("a.key"), 0u);
}

TEST(LoggerTest, DefaultIsOncePerKeyForTheLoggerLifetime) {
  std::vector<Captured> out;
  Logger log(capture_into(out));  // burst 1, window_ns 0

  for (int i = 0; i < 5; ++i) log.warn("pipeline.streams_clamped", "clamped");
  log.warn("cluster.shard_failed.0", "failed");

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "pipeline.streams_clamped");
  EXPECT_EQ(out[1].key, "cluster.shard_failed.0");
  EXPECT_EQ(log.suppressed("pipeline.streams_clamped"), 4u);
  EXPECT_EQ(log.suppressed("cluster.shard_failed.0"), 0u);
  EXPECT_EQ(log.stats().suppressed, 4u);
}

TEST(LoggerTest, BurstAdmitsNPerWindow) {
  std::vector<Captured> out;
  LoggerOptions opt = capture_into(out);
  opt.burst = 3;
  Logger log(opt);

  for (int i = 0; i < 5; ++i) log.info("k", "m");
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(log.suppressed("k"), 2u);
}

TEST(LoggerTest, WindowReArmsAndReportsSuppressedCount) {
  std::vector<Captured> out;
  std::uint64_t now = 1000;
  LoggerOptions opt = capture_into(out);
  opt.window_ns = 100;
  opt.clock = [&now] { return now; };
  Logger log(opt);

  log.warn("k", "first");          // emitted, window opens at t=1000
  log.warn("k", "suppressed one"); // over budget
  log.warn("k", "suppressed two");
  ASSERT_EQ(out.size(), 1u);

  now += 150;  // past the window: the key re-arms
  log.warn("k", "second window");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[1].message.find("second window"), std::string::npos);
  // The first message of the new window carries the suppression report.
  EXPECT_NE(out[1].message.find("2 earlier occurrence"), std::string::npos);
  EXPECT_EQ(log.suppressed("k"), 2u);
}

TEST(LoggerTest, LifetimeWindowNeverReArms) {
  std::vector<Captured> out;
  std::uint64_t now = 0;
  LoggerOptions opt = capture_into(out);
  opt.window_ns = 0;
  opt.clock = [&now] { return now; };
  Logger log(opt);

  log.warn("k", "only");
  now += 1u << 30;
  log.warn("k", "never");
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(log.suppressed("k"), 1u);
}

TEST(LoggerTest, SeverityNames) {
  EXPECT_STREQ(to_string(LogSeverity::kDebug), "debug");
  EXPECT_STREQ(to_string(LogSeverity::kInfo), "info");
  EXPECT_STREQ(to_string(LogSeverity::kWarn), "warn");
  EXPECT_STREQ(to_string(LogSeverity::kError), "error");
}

TEST(LoggerTest, GlobalLoggerExists) {
  // Just the seam: the process-global logger is constructible and callable
  // (it prints to stderr once per key; use a key no other test shares).
  Logger::global().debug("telemetry.logger_test.global_probe", "probe");
  SUCCEED();
}

}  // namespace
}  // namespace acgpu::telemetry
