// The discrete-event engine must be fully deterministic: identical launches
// produce bit-identical cycle counts and metrics, which is what makes the
// result cache and the paper-figure comparisons meaningful.
#include <gtest/gtest.h>

#include "kernels/ac_kernel.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::gpusim {
namespace {

TEST(Determinism, IdenticalLaunchesIdenticalCycles) {
  GpuConfig cfg = GpuConfig::gtx285();
  const std::string text = workload::make_corpus(200000, 42);
  workload::ExtractConfig ec;
  ec.count = 300;
  const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(text, ec), 8);

  auto run_once = [&] {
    DeviceMemory mem(64 << 20);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const auto addr = kernels::upload_text(mem, text);
    kernels::AcLaunchSpec spec;
    spec.sim.mode = SimMode::Timed;
    return kernels::run_ac_kernel(cfg, mem, ddfa, addr, text.size(), spec);
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.sim.cycles, b.sim.cycles);
  EXPECT_EQ(a.sim.sim_makespan_cycles, b.sim.sim_makespan_cycles);
  EXPECT_EQ(a.sim.metrics.global_transactions, b.sim.metrics.global_transactions);
  EXPECT_EQ(a.sim.metrics.tex_misses, b.sim.metrics.tex_misses);
  EXPECT_EQ(a.sim.metrics.warp_instructions, b.sim.metrics.warp_instructions);
  EXPECT_EQ(a.sim.metrics.stall_tex_cycles, b.sim.metrics.stall_tex_cycles);
  EXPECT_EQ(a.matches.total_reported, b.matches.total_reported);
}

TEST(Determinism, FunctionalAndTimedAgreeOnSideEffectsOfSampledBlocks) {
  // The timed run's sampled blocks must produce exactly the same records as
  // the same blocks in a functional run (the timing model may not perturb
  // data flow).
  GpuConfig cfg = GpuConfig::gtx285();
  cfg.num_sms = 2;
  const std::string text = workload::make_corpus(60000, 43);
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"the", "and"}), 8);

  auto run_mode = [&](SimMode mode) {
    DeviceMemory mem(32 << 20);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const auto addr = kernels::upload_text(mem, text);
    kernels::AcLaunchSpec spec;
    spec.sim.mode = mode;
    return kernels::run_ac_kernel(cfg, mem, ddfa, addr, text.size(), spec);
  };
  const auto timed = run_mode(SimMode::Timed);
  const auto full = run_mode(SimMode::Functional);
  // Every match the timed run reported must be in the functional run's set.
  for (const auto& m : timed.matches.matches) {
    EXPECT_TRUE(std::binary_search(full.matches.matches.begin(),
                                   full.matches.matches.end(), m));
  }
}

TEST(Warp, HelperGeometry) {
  Warp w;
  w.block_id = 3;
  w.block_dim = 128;
  w.warp_in_block = 2;
  w.lane_count = 32;
  EXPECT_EQ(w.thread_in_block(5), 2u * 32 + 5);
  EXPECT_EQ(w.global_thread(5), 3u * 128 + 69);
}

TEST(Warp, MaskHelpers) {
  Warp w;
  w.lane_count = 20;
  w.mask_all();
  for (std::uint32_t l = 0; l < 32; ++l) EXPECT_EQ(w.mask[l], l < 20);
  EXPECT_TRUE(w.any_active());
  w.mask_none();
  EXPECT_FALSE(w.any_active());
  w.mask[7] = true;
  EXPECT_TRUE(w.any_active());
}

}  // namespace
}  // namespace acgpu::gpusim
