#include "gpusim/shared_memory.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

/// Defeats constant folding: GCC 12 turns literal out-of-bounds addresses
/// into -Warray-bounds warnings even though the bounds check throws before
/// any access happens.
std::uint32_t opaque(std::uint32_t v) {
  volatile std::uint32_t o = v;
  return o;
}

std::vector<std::uint32_t> addrs_from_words(std::initializer_list<std::uint32_t> words) {
  std::vector<std::uint32_t> out;
  for (auto w : words) out.push_back(w * 4);
  return out;
}

TEST(BankConflicts, ConflictFreeHalfWarp) {
  // 16 lanes on 16 successive words: one word per bank.
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 16; ++l) addrs.push_back(l * 4);
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.groups, 1u);
  EXPECT_EQ(c.total_degree, 1u);
  EXPECT_EQ(c.max_degree, 1u);
}

TEST(BankConflicts, FullWarpTwoGroups) {
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 32; ++l) addrs.push_back(l * 4);
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.groups, 2u);
  EXPECT_EQ(c.total_degree, 2u);  // each half-warp conflict-free
}

TEST(BankConflicts, SixteenWayConflict) {
  // The naive layout's disaster: 16 lanes, stride 16 words -> same bank.
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 16; ++l) addrs.push_back(l * 16 * 4);
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.total_degree, 16u);
  EXPECT_EQ(c.max_degree, 16u);
}

TEST(BankConflicts, BroadcastSameWordIsFree) {
  std::vector<std::uint32_t> addrs(16, 128);
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.total_degree, 1u);
}

TEST(BankConflicts, SameWordDifferentBytesBroadcasts) {
  // Sub-word byte accesses into ONE 32-bit word broadcast too.
  std::vector<std::uint32_t> addrs = {100, 101, 102, 103};
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.total_degree, 1u);
}

TEST(BankConflicts, TwoWayConflict) {
  // Lanes 0..15 on words 0..15, except lane 15 reads word 16+0 -> bank 0
  // twice (words 0 and 16): degree 2.
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 15; ++l) addrs.push_back(l * 4);
  addrs.push_back(16 * 4);
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.max_degree, 2u);
  EXPECT_EQ(c.total_degree, 2u);
}

TEST(BankConflicts, StrideTwoIsTwoWay) {
  // Stride-2 words: banks 0,2,4,... each hit twice over 16 lanes.
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 16; ++l) addrs.push_back(l * 2 * 4);
  EXPECT_EQ(bank_conflicts(addrs, 16, 16).max_degree, 2u);
}

TEST(BankConflicts, GroupsProcessedIndependently) {
  // First half-warp conflict-free, second half-warp 16-way.
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 16; ++l) addrs.push_back(l * 4);
  for (std::uint32_t l = 0; l < 16; ++l) addrs.push_back(l * 16 * 4);
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.groups, 2u);
  EXPECT_EQ(c.total_degree, 1u + 16u);
  EXPECT_EQ(c.max_degree, 16u);
}

TEST(BankConflicts, PartialGroup) {
  const auto c = bank_conflicts(addrs_from_words({0, 1, 2}), 16, 16);
  EXPECT_EQ(c.groups, 1u);
  EXPECT_EQ(c.total_degree, 1u);
}

TEST(BankConflicts, EmptyAccess) {
  std::vector<std::uint32_t> addrs;
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.groups, 0u);
  EXPECT_EQ(c.total_degree, 0u);
}

TEST(BankConflicts, EmptyLaneSetAfterMaskingIsFree) {
  // A fully-masked warp instruction reaches the model with zero addresses;
  // it must cost nothing and report no groups rather than divide by zero.
  const std::vector<std::uint32_t> addrs;
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.groups, 0u);
  EXPECT_EQ(c.total_degree, 0u);
  EXPECT_EQ(c.max_degree, 0u);
}

TEST(BankConflicts, GroupLargerThanLaneCount) {
  // Full-warp conflict groups (group = 32) over a 10-lane tail warp: one
  // partial group, degree decided by the 10 live lanes only.
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 10; ++l) addrs.push_back(l * 4);
  const auto c = bank_conflicts(addrs, 16, 32);
  EXPECT_EQ(c.groups, 1u);
  EXPECT_EQ(c.total_degree, 1u);
  EXPECT_EQ(c.max_degree, 1u);
}

TEST(BankConflicts, GroupLargerThanLaneCountStillSeesConflicts) {
  // Same partial group, but two lanes land distinct words on one bank.
  std::vector<std::uint32_t> addrs = addrs_from_words({0, 1, 2, 16});
  const auto c = bank_conflicts(addrs, 16, 32);
  EXPECT_EQ(c.groups, 1u);
  EXPECT_EQ(c.max_degree, 2u);
}

TEST(BankConflicts, BroadcastSameWordAcrossAllSixteenLanes) {
  // All 16 lanes of a half-warp on ONE word: the hardware broadcast makes
  // this a single-cycle access, degree 1, regardless of which bank holds it.
  for (const std::uint32_t word : {0u, 5u, 15u, 16u, 31u}) {
    const std::vector<std::uint32_t> addrs(16, word * 4);
    const auto c = bank_conflicts(addrs, 16, 16);
    EXPECT_EQ(c.groups, 1u) << "word " << word;
    EXPECT_EQ(c.total_degree, 1u) << "word " << word;
    EXPECT_EQ(c.max_degree, 1u) << "word " << word;
  }
}

TEST(BankConflicts, FullWarpBroadcastIsOneDegreePerGroup) {
  const std::vector<std::uint32_t> addrs(32, 64);
  const auto c = bank_conflicts(addrs, 16, 16);
  EXPECT_EQ(c.groups, 2u);
  EXPECT_EQ(c.total_degree, 2u);
  EXPECT_EQ(c.max_degree, 1u);
}

TEST(BankConflicts, ValidatesArguments) {
  std::vector<std::uint32_t> addrs = {0};
  EXPECT_THROW(bank_conflicts(addrs, 0, 16), Error);
  EXPECT_THROW(bank_conflicts(addrs, 16, 0), Error);
  EXPECT_THROW(bank_conflicts(addrs, 16, 64), Error);
}

TEST(SharedMemory, LoadStoreRoundTrip) {
  SharedMemory smem(1024);
  smem.store_u32(0, 0x11223344);
  EXPECT_EQ(smem.load_u32(0), 0x11223344u);
  EXPECT_EQ(smem.load_u8(0), 0x44);  // little-endian
  smem.store_u8(100, 0x5a);
  EXPECT_EQ(smem.load_u8(100), 0x5a);
}

TEST(SharedMemory, BoundsChecked) {
  SharedMemory smem(64);
  EXPECT_THROW(smem.load_u32(opaque(62)), Error);
  EXPECT_THROW(smem.store_u8(opaque(64), 1), Error);
}

TEST(SharedMemory, WordAccessNearTheUpperBoundary) {
  // A 4-byte access fits up to size-4 and must fail for every start in
  // (size-4, size] — the off-by-one family the staging kernels risk.
  SharedMemory smem(64);
  EXPECT_NO_THROW(smem.store_u32(60, 1));
  EXPECT_NO_THROW(smem.load_u32(60));
  for (const std::uint32_t a : {61u, 62u, 63u, 64u}) {
    EXPECT_THROW(smem.load_u32(opaque(a)), Error) << "addr " << a;
    EXPECT_THROW(smem.store_u32(opaque(a), 1), Error) << "addr " << a;
  }
  EXPECT_NO_THROW(smem.load_u8(63));
  EXPECT_THROW(smem.load_u8(opaque(64)), Error);
}

TEST(SharedMemory, BoundsDiagnosticNamesTheRangeAndSize) {
  SharedMemory smem(64);
  try {
    smem.load_u32(opaque(62));
    FAIL() << "expected an out-of-bounds error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[62, 66)"), std::string::npos) << what;
    EXPECT_NE(what.find("64"), std::string::npos) << what;
  }
}

TEST(SharedMemory, ClearZeroes) {
  SharedMemory smem(16);
  smem.store_u32(4, 123);
  smem.clear();
  EXPECT_EQ(smem.load_u32(4), 0u);
}

}  // namespace
}  // namespace acgpu::gpusim
