#include <gtest/gtest.h>

#include "ac/dfa.h"
#include "cpumodel/cache_model.h"
#include "cpumodel/serial_timing.h"
#include "util/error.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::cpumodel {
namespace {

TEST(SetAssocCache, HitsAfterFill) {
  SetAssocCache cache(1024, 64, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));
  EXPECT_FALSE(cache.access(64));
  EXPECT_NEAR(cache.miss_rate(), 0.5, 1e-12);
}

TEST(SetAssocCache, LruEviction) {
  SetAssocCache cache(256, 64, 2);  // 2 sets of 2 ways
  // Lines 0, 2, 4 map to set 0.
  cache.access(0 * 64);
  cache.access(2 * 64);
  cache.access(0 * 64);  // refresh 0; 2 becomes LRU
  cache.access(4 * 64);  // evict 2
  EXPECT_TRUE(cache.access(0 * 64));
  EXPECT_FALSE(cache.access(2 * 64));
}

TEST(SetAssocCache, SequentialScanMissesOncePerLine) {
  SetAssocCache cache(32 * 1024, 64, 8);
  for (std::uint64_t a = 0; a < 4096; ++a) cache.access(a);
  EXPECT_EQ(cache.misses(), 4096u / 64);
}

TEST(SetAssocCache, ValidatesGeometry) {
  EXPECT_THROW(SetAssocCache(1024, 63, 2), acgpu::Error);
  EXPECT_THROW(SetAssocCache(1024, 64, 0), acgpu::Error);
  EXPECT_THROW(SetAssocCache(64, 64, 2), acgpu::Error);
}

TEST(SetAssocCache, ClearResets) {
  SetAssocCache cache(1024, 64, 2);
  cache.access(0);
  cache.clear();
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
  EXPECT_FALSE(cache.access(0));
}

class SerialTiming : public ::testing::Test {
 protected:
  static ac::Dfa dfa_for(std::uint32_t pattern_count) {
    const std::string corpus = workload::make_corpus(1 << 20, 7);
    workload::ExtractConfig ec;
    ec.count = pattern_count;
    return ac::build_dfa(workload::extract_patterns(corpus, ec));
  }
};

TEST_F(SerialTiming, BaseCostWithTinyStt) {
  // A tiny DFA fits in L1: cycles/byte should be near the base cost.
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"he", "she"}));
  const std::string text = workload::make_corpus(100000, 8);
  const auto est = estimate_serial(dfa, text, text.size());
  const CpuConfig cfg = CpuConfig::core2();
  EXPECT_GE(est.cycles_per_byte, cfg.base_cycles_per_byte);
  // Streaming text misses once per L1 line, adding a few cycles/byte.
  EXPECT_LT(est.cycles_per_byte, cfg.base_cycles_per_byte + 6);
  EXPECT_LT(est.l1_miss_rate, 0.05);
}

TEST_F(SerialTiming, CostGrowsWithPatternCount) {
  const std::string text = workload::make_corpus(200000, 9);
  const auto small = estimate_serial(dfa_for(100), text, text.size());
  const auto large = estimate_serial(dfa_for(4000), text, text.size());
  // The paper's Fig 13 shape: a bigger dictionary -> bigger STT -> more
  // cache misses -> more cycles per byte.
  EXPECT_GT(large.cycles_per_byte, small.cycles_per_byte * 1.5);
  EXPECT_GT(large.l1_miss_rate, small.l1_miss_rate);
}

TEST_F(SerialTiming, SecondsScaleLinearlyWithFullLength) {
  const ac::Dfa dfa = dfa_for(200);
  const std::string text = workload::make_corpus(100000, 10);
  const auto half = estimate_serial(dfa, text, 1000000);
  const auto full = estimate_serial(dfa, text, 2000000);
  EXPECT_NEAR(full.seconds / half.seconds, 2.0, 1e-9);
}

TEST_F(SerialTiming, ThroughputInPlausibleSerialRange) {
  // The paper's serial baseline sits well under 2 Gbps.
  const ac::Dfa dfa = dfa_for(500);
  const std::string text = workload::make_corpus(200000, 11);
  const auto est = estimate_serial(dfa, text, text.size());
  const double gbps = static_cast<double>(text.size()) * 8.0 / est.seconds / 1e9;
  EXPECT_GT(gbps, 0.1);
  EXPECT_LT(gbps, 3.0);
}

TEST_F(SerialTiming, ValidatesInput) {
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"x"}));
  EXPECT_THROW(estimate_serial(dfa, "", 100), acgpu::Error);
  EXPECT_THROW(estimate_serial(dfa, "abc", 1), acgpu::Error);
}

}  // namespace
}  // namespace acgpu::cpumodel
