// Cluster soak: thousands of concurrent sessions sharded over 4 background
// devices, fed from multiple threads, with a device failure injected
// mid-soak. Proves the rebalance moves every homed session, the failed
// shard's accepted bytes drain exactly (host-DFA fallback), and every
// session's final match stream equals its serial reference — zero lost,
// zero duplicated.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "ac/serial_matcher.h"
#include "cluster/router.h"
#include "util/rng.h"

namespace acgpu::cluster {
namespace {

constexpr std::size_t kSessions = 2048;
constexpr std::size_t kFeeders = 8;
constexpr std::size_t kChunk = 64;
constexpr std::size_t kBytesPerSession = 512;

std::string session_text(std::size_t session) {
  Rng rng(derive_seed(0xc5a0, session));
  std::string text(kBytesPerSession, '\0');
  for (char& c : text) c = "hersabx"[rng.next_below(7)];
  return text;
}

TEST(ClusterSoak, DeviceFailureMidSoakLosesNothing) {
  ClusterOptions opt;
  opt.devices = 4;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  opt.background = true;  // every shard runs its own pump thread
  opt.max_sessions_per_shard = kSessions;  // no LRU eviction mid-soak
  opt.coalesce_bytes = 64u << 10;
  auto router =
      Router::create(ac::PatternSet({"he", "she", "his", "hers", "ab"}), opt);
  ASSERT_TRUE(router.is_ok()) << router.status().to_string();
  Router& cluster = router.value();

  std::vector<serve::SessionId> ids(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i)
    ids[i] = cluster.open().value();
  // 2048 sessions over 4 shards: least-loaded placement gives 512 each.
  for (std::uint32_t k = 0; k < 4; ++k)
    ASSERT_EQ(cluster.shard_stats(k).value().homed_sessions, kSessions / 4);

  std::atomic<std::size_t> chunks_done{0};
  constexpr std::size_t kTotalChunks =
      kSessions * (kBytesPerSession / kChunk);
  std::atomic<bool> failure_injected{false};

  std::vector<std::thread> feeders;
  for (std::size_t f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      std::vector<std::string> texts;
      for (std::size_t i = f; i < kSessions; i += kFeeders)
        texts.push_back(session_text(i));
      for (std::size_t pos = 0; pos < kBytesPerSession; pos += kChunk) {
        for (std::size_t slot = 0; slot < texts.size(); ++slot) {
          const std::size_t session = f + slot * kFeeders;
          const std::string_view chunk =
              std::string_view(texts[slot]).substr(pos, kChunk);
          for (;;) {
            const Status s = cluster.feed(ids[session], chunk);
            if (s.is_ok()) break;
            ASSERT_EQ(s.code(), StatusCode::kOverloaded) << s.to_string();
            std::this_thread::yield();
          }
          chunks_done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Failure injector: once the soak is mid-flight, fail shard 2. Feeds keep
  // flowing throughout — the router re-homes session traffic transparently.
  std::thread injector([&] {
    while (chunks_done.load(std::memory_order_relaxed) < kTotalChunks / 2)
      std::this_thread::yield();
    ASSERT_TRUE(cluster.mark_failed(2).is_ok());
    failure_injected.store(true, std::memory_order_release);
  });

  for (auto& t : feeders) t.join();
  injector.join();
  ASSERT_TRUE(failure_injected.load(std::memory_order_acquire));
  ASSERT_TRUE(cluster.drain().is_ok());

  const RouterStats stats = cluster.stats();
  EXPECT_EQ(stats.healthy_shards, 3u);
  EXPECT_GE(stats.rebalances, 1u);
  EXPECT_EQ(stats.sessions_rebalanced, kSessions / 4)
      << "every session homed on the failed shard must migrate";
  EXPECT_EQ(cluster.shard_stats(2).value().homed_sessions, 0u);
  EXPECT_EQ(stats.sessions_live, kSessions);

  // The exactness bar: every session, including every migrated one, ends
  // with exactly its serial-reference match multiset.
  std::size_t checked_migrated = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    std::vector<ac::Match> expected =
        ac::find_all(cluster.dfa(), session_text(i));
    ac::normalize_matches(expected);
    auto got = cluster.poll(ids[i]);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    ASSERT_EQ(got.value(), expected) << "session " << ids[i];
    if (cluster.shard_of(ids[i]).value() != 2 &&
        (ids[i] >> 48) == 3)  // originally homed on shard 2
      ++checked_migrated;
  }
  EXPECT_EQ(checked_migrated, kSessions / 4);

  cluster.shutdown();
  cluster.shutdown();  // idempotent
}

}  // namespace
}  // namespace acgpu::cluster
