// Short soak: 64 concurrent sessions fed from multiple threads through a
// deliberately tiny bounded queue in background mode. Proves no deadlock,
// real backpressure (kOverloaded observed), a clean drain, and per-session
// exactness under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "ac/serial_matcher.h"
#include "serve/service.h"
#include "util/rng.h"

namespace acgpu::serve {
namespace {

constexpr std::size_t kSessions = 64;
constexpr std::size_t kFeeders = 8;
constexpr std::size_t kChunk = 256;

std::string session_text(std::size_t session) {
  Rng rng(derive_seed(0x50a4, session));
  std::string text(6 * 1024, '\0');
  for (char& c : text) c = "hersabx"[rng.next_below(7)];
  return text;
}

TEST(ServeSoak, SixtyFourSessionsBoundedQueueCleanDrain) {
  ServeOptions opt;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  opt.background = true;            // one worker owns the engine
  opt.max_sessions = kSessions;     // exactly enough: no eviction mid-soak
  opt.max_queue_chunks = 4;         // tiny queue -> rejection is near-certain
  opt.coalesce_bytes = 8 * kChunk;
  auto service = StreamService::create(
      ac::PatternSet({"he", "she", "his", "hers", "ab"}), opt);
  ASSERT_TRUE(service.is_ok()) << service.status().to_string();
  StreamService& srv = service.value();

  std::vector<SessionId> ids(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) ids[i] = srv.open().value();

  std::atomic<std::uint64_t> retries{0};
  std::vector<std::thread> feeders;
  for (std::size_t f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      // Each feeder owns a disjoint slice of the sessions and round-robins
      // chunks across them, so per-session feed order is still sequential.
      std::vector<std::string> texts;
      for (std::size_t i = f; i < kSessions; i += kFeeders)
        texts.push_back(session_text(i));
      for (std::size_t pos = 0; pos < texts[0].size(); pos += kChunk) {
        for (std::size_t slot = 0; slot < texts.size(); ++slot) {
          const std::size_t session = f + slot * kFeeders;
          const std::string_view chunk =
              std::string_view(texts[slot]).substr(pos, kChunk);
          for (;;) {
            const Status s = srv.feed(ids[session], chunk);
            if (s.is_ok()) break;
            ASSERT_EQ(s.code(), StatusCode::kOverloaded) << s.to_string();
            retries.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();  // worker is scanning; try again
          }
        }
      }
    });
  }
  for (auto& t : feeders) t.join();

  ASSERT_TRUE(srv.drain().is_ok());
  const ServiceStats stats = srv.stats();
  EXPECT_EQ(stats.queued_chunks, 0u) << "drain left work behind";
  EXPECT_GE(stats.feeds_rejected, 1u) << "soak never hit backpressure";
  EXPECT_EQ(stats.feeds_rejected, retries.load());
  EXPECT_LE(stats.max_queue_depth_chunks, 4u) << "queue bound violated";
  EXPECT_EQ(stats.sessions_evicted, 0u);

  // Every session's matches must equal its own serial reference: no loss,
  // no cross-session bleed through the shared superbatches.
  for (std::size_t i = 0; i < kSessions; ++i) {
    std::vector<ac::Match> expected = ac::find_all(srv.dfa(), session_text(i));
    ac::normalize_matches(expected);
    auto got = srv.poll(ids[i]).value();
    ac::normalize_matches(got);
    ASSERT_EQ(got, expected) << "session " << ids[i];
  }

  srv.shutdown();  // second drain + join must be clean and idempotent
  srv.shutdown();
}

}  // namespace
}  // namespace acgpu::serve
