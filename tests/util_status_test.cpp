// Status / Result<T>: the no-throw error channel used at API boundaries.
#include "util/error.h"

#include <gtest/gtest.h>

#include <string>

namespace acgpu {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = Status::invalid_argument("streams must be >= 1");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "streams must be >= 1");
  EXPECT_EQ(s.to_string(), "invalid_argument: streams must be >= 1");
}

TEST(Status, FactoriesMapToCodes) {
  EXPECT_EQ(Status::capacity_exceeded("x").code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::overloaded("x").code(), StatusCode::kOverloaded);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  EXPECT_STREQ(to_string(StatusCode::kCapacityExceeded), "capacity_exceeded");
  EXPECT_STREQ(to_string(StatusCode::kOverloaded), "overloaded");
}

TEST(Status, OverloadedIsDistinctFromCapacityExceeded) {
  // kOverloaded means "retry later" (transient backpressure from the serve
  // queue); kCapacityExceeded means a fixed budget is simply too small.
  const Status transient = Status::overloaded("queue full");
  const Status permanent = Status::capacity_exceeded("quota exhausted");
  EXPECT_NE(transient.code(), permanent.code());
  EXPECT_EQ(transient.to_string(), "overloaded: queue full");
}

TEST(Status, FromExceptionWrapsWhat) {
  const Error e("buffer too small");
  const Status s = Status::from_exception(e, StatusCode::kCapacityExceeded);
  EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(s.message(), "buffer too small");
}

TEST(Result, HoldsValueOnSuccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, PropagatesStatusOnFailure) {
  Result<int> r = Status::invalid_argument("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(r.value(), Error);  // value() on a failed result is a bug
}

TEST(Result, OkStatusWithoutValueIsInternalError) {
  Result<int> r = Status::ok();  // nonsensical: no value to return
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.is_ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace acgpu
