#include "kernels/packet_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ac/serial_matcher.h"
#include "workload/markov_corpus.h"

namespace acgpu::kernels {
namespace {

using workload::PacketTrace;
using workload::PacketTraceConfig;

PacketTrace small_trace(std::uint32_t packets, std::uint64_t seed,
                        const std::vector<std::string>& attacks, double rate,
                        std::vector<std::uint32_t>* injected = nullptr) {
  static const std::string corpus = workload::make_corpus(200000, 90);
  PacketTraceConfig cfg;
  cfg.packets = packets;
  cfg.attack_rate = rate;
  cfg.seed = seed;
  return workload::make_packet_trace(corpus, attacks, cfg, injected);
}

std::vector<PacketMatch> reference_matches(const ac::Dfa& dfa,
                                           const PacketTrace& trace) {
  std::vector<PacketMatch> expect;
  for (std::size_t pkt = 0; pkt < trace.packet_count(); ++pkt) {
    for (const ac::Match& m : ac::find_all(dfa, trace.packet(pkt)))
      expect.push_back(PacketMatch{static_cast<std::uint32_t>(pkt),
                                   static_cast<std::uint32_t>(m.end), m.pattern});
  }
  std::sort(expect.begin(), expect.end());
  return expect;
}

TEST(PacketTrace, GeometryAndContent) {
  const auto trace = small_trace(500, 1, {}, 0.0);
  EXPECT_EQ(trace.packet_count(), 500u);
  EXPECT_EQ(trace.offsets.front(), 0u);
  EXPECT_EQ(trace.offsets.back(), trace.data.size());
  for (std::size_t i = 0; i < trace.packet_count(); ++i) {
    EXPECT_GE(trace.packet(i).size(), 64u);
    EXPECT_LE(trace.packet(i).size(), 1460u);
  }
}

TEST(PacketTrace, BimodalSizes) {
  const auto trace = small_trace(2000, 2, {}, 0.0);
  std::size_t small = 0;
  for (std::size_t i = 0; i < trace.packet_count(); ++i)
    small += trace.packet(i).size() <= 200;
  // ~half the packets are small.
  EXPECT_GT(small, trace.packet_count() / 3);
  EXPECT_LT(small, trace.packet_count() * 2 / 3);
}

TEST(PacketTrace, InjectsAttacks) {
  std::vector<std::uint32_t> injected;
  const auto trace = small_trace(1000, 3, {"EVIL_PAYLOAD"}, 0.05, &injected);
  EXPECT_GT(injected.size(), 10u);
  for (std::uint32_t pkt : injected)
    EXPECT_NE(trace.packet(pkt).find("EVIL_PAYLOAD"), std::string_view::npos);
}

TEST(PacketTrace, DeterministicForSeed) {
  const auto a = small_trace(100, 4, {"x-attack"}, 0.1);
  const auto b = small_trace(100, 4, {"x-attack"}, 0.1);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.offsets, b.offsets);
}

TEST(PacketTrace, ValidatesConfig) {
  PacketTraceConfig cfg;
  cfg.packets = 0;
  EXPECT_THROW(workload::make_packet_trace("some corpus text here", {}, cfg), Error);
}

struct KernelFixture {
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  gpusim::DeviceMemory mem{64 << 20};

  PacketLaunchOutcome run(const ac::Dfa& dfa, const PacketTrace& trace) {
    cfg.num_sms = 4;
    const DeviceDfa ddfa(mem, dfa);
    const DeviceBatch batch(mem, trace);
    PacketLaunchSpec spec;
    spec.match_capacity = 64;
    spec.sim.mode = gpusim::SimMode::Functional;
    return run_packet_kernel(cfg, mem, ddfa, batch, spec);
  }
};

TEST(PacketKernel, MatchesPerPacketReference) {
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"the", "and", "EVIL"}), 8);
  const auto trace = small_trace(300, 5, {"EVIL"}, 0.1);
  KernelFixture f;
  const auto out = f.run(dfa, trace);
  EXPECT_FALSE(out.overflowed);
  EXPECT_EQ(out.matches, reference_matches(dfa, trace));
}

TEST(PacketKernel, NoCrossPacketMatches) {
  // A pattern split across two adjacent packets must NOT match: packets are
  // independent matching domains (unlike the chunked text kernels).
  PacketTrace trace;
  trace.data = "half" "pattern";  // packet 0 = "half", packet 1 = "pattern"
  trace.offsets = {0, 4, 11};
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"halfpattern", "pattern"}), 8);
  KernelFixture f;
  const auto out = f.run(dfa, trace);
  ASSERT_EQ(out.matches.size(), 1u);
  EXPECT_EQ(out.matches[0].packet, 1u);
  EXPECT_EQ(out.matches[0].pattern, 1);  // only "pattern", never "halfpattern"
}

TEST(PacketKernel, AttackedPacketsAllFlagged) {
  std::vector<std::uint32_t> injected;
  const auto trace = small_trace(500, 6, {"zZattackZz"}, 0.08, &injected);
  ASSERT_GT(injected.size(), 5u);
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"zZattackZz"}), 8);
  KernelFixture f;
  const auto out = f.run(dfa, trace);
  std::set<std::uint32_t> flagged;
  for (const auto& m : out.matches) flagged.insert(m.packet);
  for (std::uint32_t pkt : injected) EXPECT_TRUE(flagged.count(pkt)) << pkt;
}

TEST(PacketKernel, VariablePacketLengthsMaskCorrectly) {
  // Wildly mixed sizes in one warp: tiny packets retire early.
  PacketTrace trace;
  std::vector<std::string> payloads = {"a", "theattack", "xx", std::string(500, 't'),
                                       "the", "an", std::string(64, 'a'), "end"};
  trace.offsets = {0};
  for (const auto& p : payloads) {
    trace.data += p;
    trace.offsets.push_back(static_cast<std::uint32_t>(trace.data.size()));
  }
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"the", "aa"}), 8);
  KernelFixture f;
  const auto out = f.run(dfa, trace);
  EXPECT_EQ(out.matches, reference_matches(dfa, trace));
}

TEST(PacketKernel, OffsetLoadsCoalesce) {
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"qqq"}), 8);
  const auto trace = small_trace(512, 7, {}, 0.0);
  KernelFixture f;
  const auto out = f.run(dfa, trace);
  // The two offset loads per warp (32 consecutive u32s) coalesce into ~1
  // transaction each; payload byte loads are scattered. Sanity: the kernel
  // finished and processed every packet.
  EXPECT_EQ(out.sim.metrics.blocks_completed, out.blocks);
  EXPECT_TRUE(out.matches.empty());
}

}  // namespace
}  // namespace acgpu::kernels
