// Property fuzz tests: the fast cost-model implementations (coalescer and
// bank-conflict calculator) must agree with brute-force reference
// implementations on thousands of random access patterns.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gpusim/coalescer.h"
#include "gpusim/shared_memory.h"
#include "util/rng.h"

namespace acgpu::gpusim {
namespace {

std::uint32_t brute_force_segments(const std::vector<DevAddr>& addrs,
                                   std::uint32_t width, std::uint32_t segment) {
  std::set<DevAddr> segs;
  for (DevAddr a : addrs)
    for (DevAddr byte = a; byte < a + width; ++byte) segs.insert(byte / segment);
  return static_cast<std::uint32_t>(segs.size());
}

TEST(CoalescerFuzz, AgreesWithBruteForce) {
  Rng rng(1001);
  for (int round = 0; round < 500; ++round) {
    const std::uint32_t lanes = 1 + static_cast<std::uint32_t>(rng.next_below(32));
    const std::uint32_t width = rng.next_bool(0.5) ? 1 : 4;
    const std::uint32_t segment = 32u << rng.next_below(3);  // 32/64/128
    std::vector<DevAddr> addrs;
    for (std::uint32_t l = 0; l < lanes; ++l)
      addrs.push_back(rng.next_below(1 << 16));
    EXPECT_EQ(coalesce(addrs, width, segment).transactions,
              brute_force_segments(addrs, width, segment))
        << "round " << round;
  }
}

struct BruteBankCost {
  std::uint32_t total_degree = 0;
  std::uint32_t max_degree = 0;
};

BruteBankCost brute_force_conflicts(const std::vector<std::uint32_t>& addrs,
                                    std::uint32_t banks, std::uint32_t group) {
  BruteBankCost cost;
  for (std::size_t begin = 0; begin < addrs.size(); begin += group) {
    const std::size_t end = std::min(addrs.size(), begin + group);
    std::set<std::uint32_t> words;
    for (std::size_t i = begin; i < end; ++i) words.insert(addrs[i] / 4);
    std::vector<std::uint32_t> per_bank(banks, 0);
    std::uint32_t degree = 1;
    for (std::uint32_t word : words)
      degree = std::max(degree, ++per_bank[word % banks]);
    cost.total_degree += degree;
    cost.max_degree = std::max(cost.max_degree, degree);
  }
  return cost;
}

TEST(BankConflictFuzz, AgreesWithBruteForce) {
  Rng rng(1002);
  for (int round = 0; round < 500; ++round) {
    const std::uint32_t lanes = 1 + static_cast<std::uint32_t>(rng.next_below(32));
    const std::uint32_t banks = rng.next_bool(0.5) ? 16 : 32;
    const std::uint32_t group = rng.next_bool(0.5) ? 16 : 32;
    std::vector<std::uint32_t> addrs;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      // Mix of strided and random patterns to hit broadcast/conflict paths.
      addrs.push_back(rng.next_bool(0.3)
                          ? l * static_cast<std::uint32_t>(rng.next_in(1, 64)) * 4
                          : static_cast<std::uint32_t>(rng.next_below(4096)));
    }
    const BankCost fast = bank_conflicts(addrs, banks, group);
    const BruteBankCost slow = brute_force_conflicts(addrs, banks, group);
    EXPECT_EQ(fast.total_degree, slow.total_degree) << "round " << round;
    EXPECT_EQ(fast.max_degree, slow.max_degree) << "round " << round;
  }
}

TEST(CoalescerFuzz, TransactionsBoundedByLanesAndSpan) {
  Rng rng(1003);
  for (int round = 0; round < 200; ++round) {
    std::vector<DevAddr> addrs;
    const std::uint32_t lanes = 1 + static_cast<std::uint32_t>(rng.next_below(32));
    for (std::uint32_t l = 0; l < lanes; ++l) addrs.push_back(rng.next_below(1 << 20));
    const auto r = coalesce(addrs, 4, 128);
    EXPECT_GE(r.transactions, 1u);
    EXPECT_LE(r.transactions, lanes * 2);  // a 4B access spans <= 2 segments
    EXPECT_EQ(r.bytes, static_cast<std::uint64_t>(r.transactions) * 128);
  }
}

}  // namespace
}  // namespace acgpu::gpusim
