// Cluster conformance: the Router's two traffic paths against a
// single-device Engine::scan reference, swept over devices {1, 2, 4} x
// failure-injection {off, on} with salt-fuzzed chunking. Also drives the
// oracle's "router" adapter (matcher #16) directly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/router.h"
#include "oracle/matcher.h"
#include "oracle/workload_gen.h"
#include "pipeline/engine.h"
#include "util/rng.h"

namespace acgpu::cluster {
namespace {

ClusterOptions sweep_cluster(std::uint32_t devices) {
  ClusterOptions opt;
  opt.devices = devices;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  opt.admission = serve::AdmissionPolicy::kAutoFlush;
  opt.coalesce_bytes = 2048;
  return opt;
}

std::vector<ac::Match> engine_reference(const ac::PatternSet& patterns,
                                        const std::string& text) {
  EngineOptions opt;
  opt.mode = gpusim::SimMode::Functional;
  opt.gpu.num_sms = 4;
  opt.device_memory_bytes = 64u << 20;
  opt.threads_per_block = 64;
  DeviceOptions dopt;
  dopt.gpu = opt.gpu;
  dopt.memory_bytes = opt.device_memory_bytes;
  Device device = Device::create(dopt).value();
  Engine engine = Engine::create(device, patterns, opt).value();
  auto scan = engine.scan(text);
  ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
  ACGPU_CHECK(!scan.value().overflowed, "reference scan overflowed");
  return scan.value().matches;
}

struct Fuzzed {
  std::vector<std::string> patterns;
  std::string text;

  ac::PatternSet pattern_set() const { return ac::PatternSet(patterns); }
};

Fuzzed make_workload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> patterns;
  const std::size_t n = 2 + rng.next_below(12);
  for (std::size_t i = 0; i < n; ++i) {
    std::string p(1 + rng.next_below(10), '\0');
    for (char& c : p) c = "abcr"[rng.next_below(4)];
    patterns.push_back(std::move(p));
  }
  std::string text(512 + rng.next_below(4096), '\0');
  for (char& c : text) c = "abcrx"[rng.next_below(5)];
  return {std::move(patterns), std::move(text)};
}

TEST(ClusterConformance, SessionPathSweepAgainstEngineScan) {
  for (const std::uint32_t devices : {1u, 2u, 4u}) {
    for (const bool inject : {false, true}) {
      if (inject && devices == 1) continue;  // last healthy shard can't fail
      for (std::uint64_t trial = 0; trial < 4; ++trial) {
        const Fuzzed w =
            make_workload(derive_seed(0xc04f, trial * 8 + devices + inject));
        const std::vector<ac::Match> expected =
            engine_reference(w.pattern_set(), w.text);

        Router router =
            Router::create(w.pattern_set(), sweep_cluster(devices)).value();
        const serve::SessionId id = router.open().value();
        Rng chunker(derive_seed(0xc41c, trial * 8 + devices + inject));
        const std::size_t failure_at =
            inject ? chunker.next_below(w.text.size()) : w.text.size() + 1;
        bool failed_yet = false;
        std::size_t pos = 0;
        while (pos < w.text.size()) {
          if (inject && !failed_yet && pos >= failure_at) {
            ASSERT_TRUE(
                router.mark_failed(router.shard_of(id).value()).is_ok());
            failed_yet = true;
          }
          const std::size_t len = std::min<std::size_t>(
              1 + chunker.next_below(200), w.text.size() - pos);
          ASSERT_TRUE(
              router.feed(id, std::string_view(w.text).substr(pos, len))
                  .is_ok());
          pos += len;
        }
        if (inject && !failed_yet) {  // failure point fell after the last feed
          ASSERT_TRUE(router.mark_failed(router.shard_of(id).value()).is_ok());
        }
        ASSERT_TRUE(router.drain().is_ok());
        EXPECT_EQ(router.poll(id).value(), expected)
            << "devices=" << devices << " inject=" << inject
            << " trial=" << trial;
      }
    }
  }
}

TEST(ClusterConformance, BulkScanSweepAgainstEngineScan) {
  for (const std::uint32_t devices : {1u, 2u, 4u}) {
    for (const bool inject : {false, true}) {
      if (inject && devices == 1) continue;
      for (std::uint64_t trial = 0; trial < 4; ++trial) {
        const Fuzzed w =
            make_workload(derive_seed(0xb17c, trial * 8 + devices + inject));
        const std::vector<ac::Match> expected =
            engine_reference(w.pattern_set(), w.text);
        Router router =
            Router::create(w.pattern_set(), sweep_cluster(devices)).value();
        if (inject) {
          Rng rng(derive_seed(0xfa17, trial));
          ASSERT_TRUE(
              router.mark_failed(rng.next_below(devices)).is_ok());
        }
        const auto scan = router.scan(w.text);
        ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
        EXPECT_EQ(scan.value().matches, expected)
            << "devices=" << devices << " inject=" << inject
            << " trial=" << trial;
        EXPECT_EQ(scan.value().devices_used, inject ? devices - 1 : devices);
      }
    }
  }
}

TEST(ClusterConformance, OracleRouterAdapterIsRegisteredAndConforms) {
  const auto& names = oracle::registered_matcher_names();
  EXPECT_EQ(names.size(), 17u);
  EXPECT_EQ(names.back(), "dispatch");
  EXPECT_EQ(names[15], "router");
  auto matcher = oracle::make_matcher("router");
  ASSERT_NE(matcher, nullptr);

  for (std::uint64_t salt = 0; salt < 6; ++salt) {
    const Fuzzed w = make_workload(derive_seed(0x04ac, salt));
    const oracle::CompiledWorkload compiled(
        oracle::Workload{"cluster-fuzz", w.patterns, w.text});
    const std::vector<ac::Match> expected =
        engine_reference(w.pattern_set(), w.text);
    EXPECT_EQ(matcher->run(compiled, salt), expected) << "salt=" << salt;
  }
}

}  // namespace
}  // namespace acgpu::cluster
