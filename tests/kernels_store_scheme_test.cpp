#include "kernels/store_scheme.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gpusim/shared_memory.h"
#include "util/error.h"

namespace acgpu::kernels {
namespace {

TEST(StoreScheme, NaiveIsRowMajor) {
  EXPECT_EQ(map_word(StoreScheme::kCoalescedNaive, 0, 0, 16), 0u);
  EXPECT_EQ(map_word(StoreScheme::kCoalescedNaive, 0, 5, 16), 5u);
  EXPECT_EQ(map_word(StoreScheme::kCoalescedNaive, 2, 3, 16), 35u);
  EXPECT_EQ(map_word(StoreScheme::kSequential, 2, 3, 16), 35u);
}

TEST(StoreScheme, DiagonalRotatesWithinRegion) {
  EXPECT_EQ(map_word(StoreScheme::kDiagonal, 0, 5, 16), 5u);
  EXPECT_EQ(map_word(StoreScheme::kDiagonal, 1, 5, 16), 16u + 6);
  EXPECT_EQ(map_word(StoreScheme::kDiagonal, 3, 15, 16), 3u * 16 + (15 + 3) % 16);
}

TEST(StoreScheme, EverySchemeIsABijection) {
  // Each (owner, word) must map to a distinct physical word within the
  // owner's own region — no two logical words may collide.
  const std::uint32_t chunk_words = 16, owners = 33;
  for (auto scheme : {StoreScheme::kSequential, StoreScheme::kCoalescedNaive,
                      StoreScheme::kDiagonal}) {
    std::set<std::uint32_t> seen;
    for (std::uint32_t o = 0; o < owners; ++o)
      for (std::uint32_t w = 0; w < chunk_words; ++w) {
        const std::uint32_t phys = map_word(scheme, o, w, chunk_words);
        EXPECT_TRUE(seen.insert(phys).second)
            << to_string(scheme) << " collides at owner " << o << " word " << w;
        EXPECT_LT(phys, owners * chunk_words);
      }
  }
}

TEST(StoreScheme, MapByteConsistentWithMapWord) {
  for (auto scheme : {StoreScheme::kCoalescedNaive, StoreScheme::kDiagonal}) {
    for (std::uint32_t logical = 0; logical < 512; ++logical) {
      const std::uint32_t byte_addr = map_byte(scheme, logical, 64);
      const std::uint32_t word =
          map_word(scheme, logical / 64, (logical % 64) / 4, 16);
      EXPECT_EQ(byte_addr, word * 4 + logical % 4);
    }
  }
}

// The paper's whole point (Fig 11/12): during the matching phase, the 16
// threads of a half-warp read byte i of their own chunks; with the naive
// layout all 16 land on ONE bank, with the diagonal layout they cover 16.
TEST(StoreScheme, MatchPhaseConflictDegrees) {
  const std::uint32_t chunk_bytes = 64;
  for (std::uint32_t i = 0; i < chunk_bytes; ++i) {
    std::vector<std::uint32_t> naive_addrs, diag_addrs;
    for (std::uint32_t thread = 0; thread < 16; ++thread) {
      const std::uint32_t logical = thread * chunk_bytes + i;
      naive_addrs.push_back(map_byte(StoreScheme::kCoalescedNaive, logical, chunk_bytes));
      diag_addrs.push_back(map_byte(StoreScheme::kDiagonal, logical, chunk_bytes));
    }
    EXPECT_EQ(gpusim::bank_conflicts(naive_addrs, 16, 16).max_degree, 16u)
        << "byte " << i;
    EXPECT_EQ(gpusim::bank_conflicts(diag_addrs, 16, 16).max_degree, 1u)
        << "byte " << i;
  }
}

// Staging phase: 16 cooperating threads store 16 consecutive logical words.
// Both coalesced layouts must be conflict-free within one owner's region.
TEST(StoreScheme, StagingStoresConflictFreeWithinChunk) {
  const std::uint32_t chunk_words = 32;  // 128B chunks: one owner per step
  for (auto scheme : {StoreScheme::kCoalescedNaive, StoreScheme::kDiagonal}) {
    std::vector<std::uint32_t> addrs;
    for (std::uint32_t t = 0; t < 16; ++t)
      addrs.push_back(map_word(scheme, 0, t, chunk_words) * 4);
    EXPECT_EQ(gpusim::bank_conflicts(addrs, 16, 16).max_degree, 1u)
        << to_string(scheme);
  }
}

TEST(StoreScheme, DiagonalDegreeBoundedAtChunkBoundaries) {
  // When a half-warp's 16 consecutive words straddle owner regions the
  // diagonal rotation can produce at most a 2-way conflict.
  const std::uint32_t chunk_words = 16;
  for (std::uint32_t start = 0; start < 64; ++start) {
    std::vector<std::uint32_t> addrs;
    for (std::uint32_t t = 0; t < 16; ++t) {
      const std::uint32_t wi = start + t;
      addrs.push_back(map_word(StoreScheme::kDiagonal, wi / chunk_words,
                               wi % chunk_words, chunk_words) * 4);
    }
    EXPECT_LE(gpusim::bank_conflicts(addrs, 16, 16).max_degree, 2u)
        << "start " << start;
  }
}

TEST(StoreScheme, MapByteValidatesChunkAlignment) {
  EXPECT_THROW(map_byte(StoreScheme::kDiagonal, 0, 63), acgpu::Error);
}

TEST(StoreScheme, MapWordValidatesRange) {
  EXPECT_THROW(map_word(StoreScheme::kDiagonal, 0, 16, 16), acgpu::Error);
  EXPECT_THROW(map_word(StoreScheme::kDiagonal, 0, 0, 0), acgpu::Error);
}

TEST(StoreScheme, ToStringNames) {
  EXPECT_STREQ(to_string(StoreScheme::kSequential), "sequential");
  EXPECT_STREQ(to_string(StoreScheme::kCoalescedNaive), "coalesced-naive");
  EXPECT_STREQ(to_string(StoreScheme::kDiagonal), "diagonal");
}

}  // namespace
}  // namespace acgpu::kernels
