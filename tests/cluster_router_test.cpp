// cluster::Router: session affinity and globally unique ids, the bulk
// scatter/gather scan with exactly-once seam semantics, fail-stop and
// graceful rebalances with zero lost/duplicated matches, topology guards,
// and the router.*/device.N.* telemetry series.
#include "cluster/router.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ac/serial_matcher.h"
#include "telemetry/metrics_registry.h"
#include "util/rng.h"

namespace acgpu::cluster {
namespace {

ClusterOptions fast_cluster(std::uint32_t devices) {
  ClusterOptions opt;
  opt.devices = devices;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  return opt;
}

Router make_router(const std::vector<std::string>& patterns,
                   const ClusterOptions& opt) {
  auto r = Router::create(ac::PatternSet(patterns), opt);
  ACGPU_CHECK(r.is_ok(), r.status().to_string());
  return std::move(r).value();
}

std::vector<ac::Match> reference(const Router& router, const std::string& text) {
  std::vector<ac::Match> expected = ac::find_all(router.dfa(), text);
  ac::normalize_matches(expected);
  return expected;
}

std::string herd_text() {
  std::string text;
  for (int i = 0; i < 200; ++i) text += "ushers and sheep hide his herbs ";
  return text;
}

TEST(ClusterRouter, ValidatesOptions) {
  ClusterOptions opt = fast_cluster(0);
  EXPECT_FALSE(opt.validate().is_ok());
  opt = fast_cluster(65);
  EXPECT_FALSE(opt.validate().is_ok());
  opt = fast_cluster(2);
  opt.engine.telemetry.metrics_prefix = "mine.";
  EXPECT_FALSE(opt.validate().is_ok());
  EXPECT_TRUE(fast_cluster(2).validate().is_ok());
  EXPECT_FALSE(
      Router::create(ac::PatternSet(std::vector<std::string>{}), fast_cluster(2))
          .is_ok());
}

TEST(ClusterRouter, OpenSpreadsSessionsAndIdsAreGloballyUnique) {
  Router router = make_router({"he"}, fast_cluster(4));
  std::set<serve::SessionId> ids;
  for (int i = 0; i < 8; ++i) {
    const serve::SessionId id = router.open().value();
    EXPECT_TRUE(ids.insert(id).second) << "duplicate session id " << id;
  }
  // Least-loaded placement: 8 sessions over 4 shards = exactly 2 each.
  for (std::uint32_t k = 0; k < 4; ++k)
    EXPECT_EQ(router.shard_stats(k).value().homed_sessions, 2u);
  // Ids are deterministic: shard k's n-th session is ((k+1)<<48)+n.
  EXPECT_TRUE(ids.count((1ull << 48) + 1));
  EXPECT_TRUE(ids.count((2ull << 48) + 1));
  EXPECT_TRUE(ids.count((3ull << 48) + 2));
  EXPECT_TRUE(ids.count((4ull << 48) + 2));
}

TEST(ClusterRouter, SessionPathMatchesSerialReference) {
  Router router = make_router({"he", "she", "his", "hers"}, fast_cluster(2));
  const std::string text = herd_text();
  const serve::SessionId id = router.open().value();
  for (std::size_t pos = 0; pos < text.size(); pos += 7)
    ASSERT_TRUE(router.feed(id, std::string_view(text).substr(pos, 7)).is_ok());
  ASSERT_TRUE(router.drain().is_ok());
  EXPECT_EQ(router.poll(id).value(), reference(router, text));
}

TEST(ClusterRouter, BulkScanMatchesSerialReferenceAcrossDeviceCounts) {
  const std::string text = herd_text();
  for (std::uint32_t devices : {1u, 2u, 3u, 4u}) {
    Router router =
        make_router({"he", "she", "his", "hers", "sheep"}, fast_cluster(devices));
    const auto scan = router.scan(text);
    ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
    EXPECT_EQ(scan.value().devices_used, devices);
    EXPECT_EQ(scan.value().matches, reference(router, text))
        << "devices=" << devices;
    EXPECT_EQ(scan.value().per_device_seconds.size(), devices);
  }
}

TEST(ClusterRouter, BulkScanSeamStraddlersExactlyOnce) {
  // A long pattern placed to straddle every slab seam for 2..5 devices.
  const std::string needle = "abcdefghij";
  std::string text(1000, 'x');
  for (std::size_t pos : {245u, 495u, 745u, 330u, 660u})
    text.replace(pos, needle.size(), needle);
  for (std::uint32_t devices : {2u, 3u, 4u, 5u}) {
    Router router = make_router({needle}, fast_cluster(devices));
    const auto scan = router.scan(text);
    ASSERT_TRUE(scan.is_ok());
    EXPECT_EQ(scan.value().matches, reference(router, text))
        << "devices=" << devices;
  }
}

TEST(ClusterRouter, EmptyScanAndEmptyPollAreFine) {
  Router router = make_router({"he"}, fast_cluster(2));
  EXPECT_TRUE(router.scan("").value().matches.empty());
  const serve::SessionId id = router.open().value();
  EXPECT_TRUE(router.poll(id).value().empty());
  EXPECT_EQ(router.feed(999, "x").code(), StatusCode::kInvalidArgument);
}

TEST(ClusterRouter, MarkFailedMigratesSessionsWithoutLosingMatches) {
  Router router = make_router({"he", "she", "hers"}, fast_cluster(2));
  const std::string text = herd_text();
  const std::vector<ac::Match> expected = reference(router, text);

  // Two sessions, one per shard; feed the first half to both.
  const serve::SessionId a = router.open().value();
  const serve::SessionId b = router.open().value();
  EXPECT_NE(router.shard_of(a).value(), router.shard_of(b).value());
  const std::size_t half = text.size() / 2;
  for (std::size_t pos = 0; pos < half; pos += 7) {
    ASSERT_TRUE(router.feed(a, std::string_view(text).substr(pos, std::min<std::size_t>(7, half - pos))).is_ok());
    ASSERT_TRUE(router.feed(b, std::string_view(text).substr(pos, std::min<std::size_t>(7, half - pos))).is_ok());
  }

  // Fail the shard homing `a` mid-stream; its session must migrate.
  const std::uint32_t failed_shard = router.shard_of(a).value();
  ASSERT_TRUE(router.mark_failed(failed_shard).is_ok());
  ASSERT_TRUE(router.mark_failed(failed_shard).is_ok());  // idempotent
  EXPECT_NE(router.shard_of(a).value(), failed_shard);
  EXPECT_EQ(router.stats().rebalances, 1u);
  EXPECT_EQ(router.stats().sessions_rebalanced, 1u);
  EXPECT_EQ(router.stats().healthy_shards, 1u);

  // Both streams finish on the surviving shard — same id, same matches.
  for (std::size_t pos = half; pos < text.size(); pos += 7) {
    ASSERT_TRUE(router.feed(a, std::string_view(text).substr(pos, 7)).is_ok());
    ASSERT_TRUE(router.feed(b, std::string_view(text).substr(pos, 7)).is_ok());
  }
  ASSERT_TRUE(router.drain().is_ok());
  EXPECT_EQ(router.poll(a).value(), expected);
  EXPECT_EQ(router.poll(b).value(), expected);
}

TEST(ClusterRouter, MigrationPreservesBoundarySpanningMatches) {
  // The carried DFA state must travel with the session: "hers" split as
  // "he" before the failure and "rs" after it is found iff the export
  // snapshot carried the automaton state across devices.
  Router router = make_router({"hers"}, fast_cluster(2));
  const serve::SessionId id = router.open().value();
  ASSERT_TRUE(router.feed(id, "xxhe").is_ok());
  ASSERT_TRUE(router.drain().is_ok());  // state now mid-pattern
  const std::uint32_t home = router.shard_of(id).value();
  ASSERT_TRUE(router.mark_failed(home).is_ok());
  ASSERT_TRUE(router.feed(id, "rsxx").is_ok());
  ASSERT_TRUE(router.drain().is_ok());
  const std::vector<ac::Match> expected = {{5, 0}};
  EXPECT_EQ(router.poll(id).value(), expected);
}

TEST(ClusterRouter, LastHealthyShardCannotFailOrDrain) {
  Router router = make_router({"he"}, fast_cluster(2));
  ASSERT_TRUE(router.mark_failed(0).is_ok());
  EXPECT_EQ(router.mark_failed(1).code(), StatusCode::kUnavailable);
  EXPECT_EQ(router.drain_shard(1).code(), StatusCode::kUnavailable);
  EXPECT_EQ(router.mark_failed(7).code(), StatusCode::kInvalidArgument);
  // Restore shard 0 and the cluster is 2-healthy again.
  ASSERT_TRUE(router.restore(0).is_ok());
  EXPECT_EQ(router.stats().healthy_shards, 2u);
  EXPECT_TRUE(router.mark_failed(1).is_ok());
}

TEST(ClusterRouter, FailedShardExcludedFromBulkScanThenReadmitted) {
  const std::string text = herd_text();
  Router router = make_router({"he", "she"}, fast_cluster(3));
  ASSERT_TRUE(router.mark_failed(1).is_ok());
  const auto degraded = router.scan(text);
  ASSERT_TRUE(degraded.is_ok());
  EXPECT_EQ(degraded.value().devices_used, 2u);
  EXPECT_EQ(degraded.value().matches, reference(router, text));
  ASSERT_TRUE(router.restore(1).is_ok());
  EXPECT_EQ(router.scan(text).value().devices_used, 3u);
}

TEST(ClusterRouter, DrainShardIsGracefulAndNewSessionsAvoidIt) {
  Router router = make_router({"he"}, fast_cluster(2));
  const serve::SessionId id = router.open().value();
  const std::uint32_t home = router.shard_of(id).value();
  ASSERT_TRUE(router.feed(id, "ushers").is_ok());
  ASSERT_TRUE(router.drain_shard(home).is_ok());
  EXPECT_NE(router.shard_of(id).value(), home);
  // The drained shard's device is still healthy — restore() is about
  // admission, not device health.
  EXPECT_FALSE(router.shard_stats(home).value().failed);
  EXPECT_TRUE(router.shard_stats(home).value().draining);
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(router.shard_of(router.open().value()).value(), home);
  ASSERT_TRUE(router.drain().is_ok());
  EXPECT_EQ(router.poll(id).value().size(), 1u);
}

TEST(ClusterRouter, CloseForgetsTheSession) {
  Router router = make_router({"he"}, fast_cluster(2));
  const serve::SessionId id = router.open().value();
  ASSERT_TRUE(router.close(id).is_ok());
  EXPECT_EQ(router.feed(id, "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(router.close(id).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(router.stats().sessions_live, 0u);
}

TEST(ClusterRouter, ShutdownStopsAdmission) {
  Router router = make_router({"he"}, fast_cluster(2));
  const serve::SessionId id = router.open().value();
  ASSERT_TRUE(router.feed(id, "ushers").is_ok());
  router.shutdown();
  router.shutdown();  // idempotent
  EXPECT_FALSE(router.open().is_ok());
  EXPECT_FALSE(router.scan("x").is_ok());
  // Accepted work drained on shutdown and is still pollable.
  EXPECT_EQ(router.poll(id).value().size(), 1u);
}

TEST(ClusterRouter, PublishesRouterAndPerDeviceSeries) {
  telemetry::MetricsRegistry registry;
  ClusterOptions opt = fast_cluster(2);
  opt.metrics = &registry;
  Router router = make_router({"he", "she"}, opt);
  const serve::SessionId id = router.open().value();
  ASSERT_TRUE(router.feed(id, "ushers ushers").is_ok());
  ASSERT_TRUE(router.drain().is_ok());
  ASSERT_TRUE(router.scan(herd_text()).is_ok());
  ASSERT_TRUE(router.mark_failed(router.shard_of(id).value()).is_ok());

  const auto snapshot = registry.snapshot();
  for (const char* name :
       {"router.sessions.opened", "router.feeds", "router.feed.bytes",
        "router.scans", "router.rebalances", "router.sessions.rebalanced",
        "router.matches.merged", "router.shards", "router.healthy_shards",
        "router.sessions.live", "router.scan.makespan_seconds",
        "router.scan.throughput_gbps", "device.0.serve.sessions.opened",
        "device.1.serve.sessions.opened", "device.0.pipeline.runs",
        "device.1.pipeline.runs"})
    EXPECT_TRUE(snapshot.value(name).has_value()) << name;
  EXPECT_EQ(snapshot.value("router.shards"), 2.0);
  EXPECT_EQ(snapshot.value("router.healthy_shards"), 1.0);
  EXPECT_EQ(snapshot.value("router.rebalances"), 1.0);
  // Classic un-prefixed single-device series must NOT appear: every shard
  // publishes under its own device.N. namespace.
  EXPECT_FALSE(snapshot.value("serve.sessions.opened").has_value());
  EXPECT_FALSE(snapshot.value("pipeline.runs").has_value());
}

TEST(ClusterRouter, StatsRollUp) {
  Router router = make_router({"he"}, fast_cluster(4));
  for (int i = 0; i < 6; ++i) router.open().value();
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.healthy_shards, 4u);
  EXPECT_EQ(stats.sessions_opened, 6u);
  EXPECT_EQ(stats.sessions_live, 6u);
  EXPECT_EQ(router.shard_count(), 4u);
  // Device identities are distinct, names are per-shard deterministic.
  std::set<std::uint32_t> device_ids;
  for (std::uint32_t k = 0; k < 4; ++k) {
    const ShardStats shard = router.shard_stats(k).value();
    EXPECT_EQ(shard.shard, k);
    device_ids.insert(shard.device_id);
    EXPECT_EQ(shard.device_name, "device." + std::to_string(k));
  }
  EXPECT_EQ(device_ids.size(), 4u);
}

}  // namespace
}  // namespace acgpu::cluster
