// acgpu::Device ownership API: process-unique ids, the registry, health
// flagging (fail-stop), and Engines bound to an explicit Device — including
// several engines sharing one device and the deprecated private-Device shim.
#include "pipeline/device.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ac/serial_matcher.h"
#include "gpusim/device_registry.h"
#include "pipeline/engine.h"

namespace acgpu {
namespace {

DeviceOptions small_device() {
  DeviceOptions opt;
  opt.gpu.num_sms = 4;
  opt.memory_bytes = 64u << 20;
  return opt;
}

EngineOptions fast_engine() {
  EngineOptions opt;
  opt.mode = gpusim::SimMode::Functional;
  opt.threads_per_block = 64;
  return opt;
}

TEST(Device, IdsAreProcessUniqueAndRegistered) {
  Device a = Device::create(small_device()).value();
  Device b = Device::create(small_device()).value();
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.name(), "device." + std::to_string(a.id()));
  EXPECT_EQ(gpusim::device_name(a.id()), a.name());
  EXPECT_EQ(gpusim::device_name(b.id()), b.name());

  bool saw_a = false, saw_b = false;
  for (const gpusim::DeviceInfo& info : gpusim::registered_devices()) {
    saw_a |= info.id == a.id();
    saw_b |= info.id == b.id();
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(Device, DestructionUnregisters) {
  std::uint32_t id = 0;
  {
    Device d = Device::create(small_device()).value();
    id = d.id();
    EXPECT_FALSE(gpusim::device_name(id).empty());
  }
  EXPECT_TRUE(gpusim::device_name(id).empty());
}

TEST(Device, CustomNameAndZeroMemoryRejected) {
  DeviceOptions opt = small_device();
  opt.name = "edge-node-3";
  Device d = Device::create(opt).value();
  EXPECT_EQ(d.name(), "edge-node-3");
  EXPECT_EQ(gpusim::device_name(d.id()), "edge-node-3");

  opt.memory_bytes = 0;
  EXPECT_EQ(Device::create(opt).status().code(), StatusCode::kInvalidArgument);
}

TEST(Device, HealthFlagGatesEngineScans) {
  Device device = Device::create(small_device()).value();
  Engine engine =
      Engine::create(device, ac::PatternSet({"he", "she"}), fast_engine())
          .value();
  ASSERT_TRUE(engine.scan("ushers").is_ok());

  device.mark_failed("pulled for maintenance");
  EXPECT_FALSE(device.healthy());
  EXPECT_EQ(device.fail_reason(), "pulled for maintenance");
  const auto failed = engine.scan("ushers");
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  device.restore();
  EXPECT_TRUE(device.healthy());
  EXPECT_TRUE(engine.scan("ushers").is_ok());
}

TEST(Device, EnginesShareOneDeviceAndAgree) {
  Device device = Device::create(small_device()).value();
  Engine a = Engine::create(device, ac::PatternSet({"ab"}), fast_engine())
                 .value();
  Engine b = Engine::create(device, ac::PatternSet({"abc", "bc"}),
                            fast_engine())
                 .value();
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(&a.device(), &device);
  EXPECT_EQ(&b.device(), &device);

  const std::string text = "xabcababc";
  EXPECT_EQ(a.scan(text).value().matches, ac::find_all(a.dfa(), text));
  EXPECT_EQ(b.scan(text).value().matches, ac::find_all(b.dfa(), text));
}

TEST(Device, DeprecatedShimStillScansOnPrivateDevice) {
  EngineOptions opt = fast_engine();
  opt.gpu.num_sms = 4;
  opt.device_memory_bytes = 64u << 20;
  // Deliberate use: this is the one test keeping the deprecated shim
  // covered until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Engine engine = Engine::create(ac::PatternSet({"he"}), opt).value();
#pragma GCC diagnostic pop
  // The shim's private device is real: registered, named, and health-gated.
  EXPECT_EQ(gpusim::device_name(engine.device().id()), engine.device().name());
  EXPECT_EQ(engine.scan("ushers").value().matches.size(), 1u);
  engine.device().mark_failed("");
  EXPECT_EQ(engine.scan("ushers").status().code(), StatusCode::kUnavailable);
}

TEST(Device, EngineIdsAreUniqueAcrossDevices) {
  Device d1 = Device::create(small_device()).value();
  Device d2 = Device::create(small_device()).value();
  std::vector<std::uint32_t> ids;
  for (Device* d : {&d1, &d2})
    for (int i = 0; i < 3; ++i)
      ids.push_back(Engine::create(*d, ac::PatternSet({"x"}), fast_engine())
                        .value()
                        .id());
  for (std::size_t i = 0; i < ids.size(); ++i)
    for (std::size_t j = i + 1; j < ids.size(); ++j)
      EXPECT_NE(ids[i], ids[j]);
}

TEST(Device, DfaOverloadBindsToExplicitDevice) {
  Device device = Device::create(small_device()).value();
  ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"ab"}), 8);
  Engine engine = Engine::create(device, std::move(dfa), fast_engine()).value();
  EXPECT_EQ(engine.scan("abab").value().matches.size(), 2u);
}

}  // namespace
}  // namespace acgpu
