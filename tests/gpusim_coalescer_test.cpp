#include "gpusim/coalescer.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

TEST(Coalescer, PerfectlyCoalescedWarp) {
  // 32 consecutive 4-byte words starting at a 128B boundary: one segment.
  std::vector<DevAddr> addrs;
  for (int l = 0; l < 32; ++l) addrs.push_back(1024 + l * 4);
  const auto r = coalesce(addrs, 4, 128);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bytes, 128u);
}

TEST(Coalescer, MisalignedWarpTouchesTwoSegments) {
  std::vector<DevAddr> addrs;
  for (int l = 0; l < 32; ++l) addrs.push_back(1024 + 64 + l * 4);
  EXPECT_EQ(coalesce(addrs, 4, 128).transactions, 2u);
}

TEST(Coalescer, StridedBytesAreTerrible) {
  // The global-only kernel's pattern: lane l reads byte at l*chunk (chunk
  // = 64): two lanes per 128B segment -> 16 transactions for 32 bytes used.
  std::vector<DevAddr> addrs;
  for (int l = 0; l < 32; ++l) addrs.push_back(static_cast<DevAddr>(l) * 64);
  const auto r = coalesce(addrs, 1, 128);
  EXPECT_EQ(r.transactions, 16u);
  EXPECT_EQ(r.bytes, 16u * 128);
}

TEST(Coalescer, AllLanesSameAddress) {
  std::vector<DevAddr> addrs(32, 4096);
  EXPECT_EQ(coalesce(addrs, 4, 128).transactions, 1u);
}

TEST(Coalescer, AccessStraddlingSegmentBoundary) {
  // A 4-byte access at 126 touches segments [0,128) and [128,256).
  std::vector<DevAddr> addrs = {126};
  EXPECT_EQ(coalesce(addrs, 4, 128).transactions, 2u);
}

TEST(Coalescer, SingleLane) {
  std::vector<DevAddr> addrs = {500};
  const auto r = coalesce(addrs, 1, 128);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bytes, 128u);
}

TEST(Coalescer, EmptyAccessList) {
  std::vector<DevAddr> addrs;
  EXPECT_EQ(coalesce(addrs, 4, 128).transactions, 0u);
}

TEST(Coalescer, WorstCaseFullyScattered) {
  std::vector<DevAddr> addrs;
  for (int l = 0; l < 32; ++l) addrs.push_back(static_cast<DevAddr>(l) * 4096);
  EXPECT_EQ(coalesce(addrs, 4, 128).transactions, 32u);
}

TEST(DistinctSegments, SortedAndDeduped) {
  std::vector<DevAddr> addrs = {300, 100, 130, 310};
  const auto segs = distinct_segments(addrs, 4, 128);
  EXPECT_EQ(segs, (std::vector<DevAddr>{0, 128, 256}));
}

TEST(Coalescer, SegmentSizeValidation) {
  std::vector<DevAddr> addrs = {0};
  EXPECT_THROW(coalesce(addrs, 4, 100), Error);  // not a power of two
  EXPECT_THROW(coalesce(addrs, 0, 128), Error);  // zero width
}

TEST(Coalescer, SmallerSegmentsMoreTransactions) {
  std::vector<DevAddr> addrs;
  for (int l = 0; l < 32; ++l) addrs.push_back(l * 4);
  EXPECT_EQ(coalesce(addrs, 4, 128).transactions, 1u);
  EXPECT_EQ(coalesce(addrs, 4, 64).transactions, 2u);
  EXPECT_EQ(coalesce(addrs, 4, 32).transactions, 4u);
}

}  // namespace
}  // namespace acgpu::gpusim
