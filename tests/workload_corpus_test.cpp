#include "workload/markov_corpus.h"

#include <gtest/gtest.h>

#include <array>
#include <cctype>

#include "util/error.h"
#include "workload/seed_text.h"

namespace acgpu::workload {
namespace {

TEST(SeedText, IsSubstantialEnglish) {
  const auto seed = seed_text();
  EXPECT_GT(seed.size(), 3000u);
  // Mixed case, digits, punctuation all present.
  bool upper = false, lower = false, digit = false, space = false;
  for (char c : seed) {
    upper |= std::isupper(static_cast<unsigned char>(c)) != 0;
    lower |= std::islower(static_cast<unsigned char>(c)) != 0;
    digit |= std::isdigit(static_cast<unsigned char>(c)) != 0;
    space |= c == ' ';
  }
  EXPECT_TRUE(upper && lower && digit && space);
}

TEST(MarkovModel, DeterministicForSeed) {
  const MarkovModel model(seed_text());
  EXPECT_EQ(model.generate(5000, 1), model.generate(5000, 1));
  EXPECT_NE(model.generate(5000, 1), model.generate(5000, 2));
}

TEST(MarkovModel, ExactRequestedLength) {
  const MarkovModel model(seed_text());
  for (std::size_t n : {1ul, 2ul, 3ul, 100ul, 4097ul})
    EXPECT_EQ(model.generate(n, 3).size(), n);
}

TEST(MarkovModel, OutputAlphabetSubsetOfTraining) {
  const MarkovModel model(seed_text());
  std::array<bool, 256> in_training{};
  for (char c : seed_text()) in_training[static_cast<unsigned char>(c)] = true;
  for (char c : model.generate(20000, 4))
    EXPECT_TRUE(in_training[static_cast<unsigned char>(c)]);
}

TEST(MarkovModel, EnglishLikeLetterFrequency) {
  const std::string text = make_corpus(100000, 5);
  std::size_t spaces = 0, es = 0, zs = 0;
  for (char c : text) {
    spaces += c == ' ';
    es += c == 'e';
    zs += c == 'z';
  }
  // English prose: ~15-20% spaces, 'e' far more common than 'z'.
  EXPECT_GT(spaces, text.size() / 10);
  EXPECT_GT(es, zs * 5);
}

TEST(MarkovModel, ContextCountReflectsTraining) {
  const MarkovModel model(seed_text());
  EXPECT_GT(model.context_count(), 300u);
  EXPECT_LT(model.context_count(), 65536u);
}

TEST(MarkovModel, TinyTrainingTextStillWorks) {
  const MarkovModel model("abcabcabc");
  const std::string out = model.generate(1000, 6);
  EXPECT_EQ(out.size(), 1000u);
  for (char c : out) EXPECT_TRUE(c == 'a' || c == 'b' || c == 'c');
}

TEST(MarkovModel, RejectsDegenerateInput) {
  EXPECT_THROW(MarkovModel("ab"), Error);
  const MarkovModel model(seed_text());
  EXPECT_THROW(model.generate(0, 1), Error);
}

TEST(MakeCorpus, StableAcrossCalls) {
  EXPECT_EQ(make_corpus(10000, 42), make_corpus(10000, 42));
}

TEST(MakeCorpus, PrefixProperty) {
  // Slicing one large corpus (as the sweep does) must equal the prefix.
  const std::string big = make_corpus(20000, 43);
  const std::string small = make_corpus(5000, 43);
  EXPECT_EQ(big.substr(0, 5000), small);
}

}  // namespace
}  // namespace acgpu::workload
