// The DispatchEngine facade end to end: routed scans must be match-exact
// with the serial reference under every force policy (routing is a pure
// scheduling decision), calibration must produce a measured GPU curve and
// the anchor ladder, the autotune-on-miss path must populate a cache a
// second engine replays without re-tuning, and a dispatcher-wired
// StreamService must stay conformant while the census advances.
#include "dispatch/dispatcher.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ac/automaton.h"
#include "ac/dfa.h"
#include "ac/pattern_set.h"
#include "ac/serial_matcher.h"
#include "serve/service.h"
#include "util/rng.h"

namespace acgpu::dispatch {
namespace {

std::vector<std::string> test_patterns() {
  return {"he", "she", "his", "hers", "abab"};
}

std::string make_text(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  std::string text;
  text.reserve(bytes);
  const std::vector<std::string> pats = test_patterns();
  while (text.size() < bytes) {
    if (rng.next_below(64) == 0) {
      const std::string& p = pats[rng.next_below(pats.size())];
      text.append(p.substr(0, std::min(p.size(), bytes - text.size())));
    } else {
      text.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
  }
  return text;
}

DispatchEngineOptions fast_options() {
  DispatchEngineOptions opt;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 128u << 20;
  opt.engine.threads_per_block = 64;
  // Per-THREAD record slots: the ~1-plant-per-64-bytes workload fits with
  // room to spare, and the buffer stays small (capacity x threads records).
  opt.engine.match_capacity = 256;
  opt.calibrate = false;  // conformance only needs the analytic seed
  return opt;
}

DispatchEngine make_engine(const DispatchEngineOptions& opt) {
  auto r = DispatchEngine::create(ac::PatternSet(test_patterns()), opt);
  ACGPU_CHECK(r.is_ok(), r.status().to_string());
  return std::move(r).value();
}

TEST(DispatchEngine, EveryForcePolicyMatchesTheSerialReference) {
  DispatchEngine engine = make_engine(fast_options());
  static constexpr ForcePolicy kPolicies[] = {
      ForcePolicy::kAuto, ForcePolicy::kSerial, ForcePolicy::kParallel,
      ForcePolicy::kGpu, ForcePolicy::kWorst,
  };
  for (std::size_t bytes : {std::size_t{64}, std::size_t{1000},
                            std::size_t{64u << 10}}) {
    const std::string text = make_text(bytes, /*seed=*/bytes);
    std::vector<ac::Match> expected = ac::find_all(engine.dfa(), text);
    ac::normalize_matches(expected);
    for (ForcePolicy policy : kPolicies) {
      auto scan = engine.scan_with(text, policy);
      ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
      ASSERT_FALSE(scan.value().overflowed);
      std::vector<ac::Match> got = std::move(scan).value().matches;
      ac::normalize_matches(got);
      EXPECT_EQ(got, expected) << "policy " << static_cast<int>(policy)
                               << " at " << bytes << " bytes";
    }
  }
}

TEST(DispatchEngine, ForcedScansRunTheRequestedBackendAndReportIt) {
  DispatchEngine engine = make_engine(fast_options());
  const std::string text = make_text(4096, 7);
  for (int b = 0; b < kBackendCount; ++b) {
    const Backend backend = static_cast<Backend>(b);
    auto scan = engine.scan_forced(text, backend);
    ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
    EXPECT_EQ(scan.value().backend, backend);
    EXPECT_GT(scan.value().modeled_seconds, 0.0);
  }
  // All forced: no mispredictions, three decisions on the census.
  const DispatchStats stats = engine.dispatcher().stats();
  EXPECT_EQ(stats.mispredictions, 0u);
  std::uint64_t total = 0;
  for (int b = 0; b < kBackendCount; ++b) total += stats.decisions[b];
  EXPECT_EQ(total, 3u);
}

TEST(DispatchEngine, EmptyTextIsAnEmptyResult) {
  DispatchEngine engine = make_engine(fast_options());
  auto scan = engine.scan("");
  ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
  EXPECT_TRUE(scan.value().matches.empty());
}

TEST(DispatchEngine, CalibrationInstallsAMeasuredGpuCurve) {
  DispatchEngineOptions opt = fast_options();
  opt.calibrate = true;
  opt.engine.mode = gpusim::SimMode::Timed;  // probes are throughput-only
  DispatchEngine engine = make_engine(opt);
  const CostModel& model = engine.dispatcher().cost_model();
  // The probe fit replaces the analytic seed; both legs must be sane.
  EXPECT_GT(model.gpu_overhead_seconds(), 0.0);
  EXPECT_GT(model.gpu_bytes_per_second(), 0.0);
  EXPECT_GT(model.serial_cycles_per_byte(), 0.0);
  // And the calibrated serial curve is concave: pricier per byte when tiny.
  const WorkloadSignature tiny = engine.dispatcher().signature(
      std::string(64, 'a'), false);
  const WorkloadSignature big = engine.dispatcher().signature(
      std::string(64u << 10, 'a'), false);
  const double tiny_per_byte =
      model.predict(Backend::kSerialCpu, tiny) / 64.0;
  const double big_per_byte =
      model.predict(Backend::kSerialCpu, big) / static_cast<double>(64u << 10);
  EXPECT_GT(tiny_per_byte, big_per_byte);
}

TEST(DispatchEngine, AutotuneOnMissPopulatesACacheASecondEngineReplays) {
  const std::string path = testing::TempDir() + "acgpu_dispatch_engine_cache.txt";
  std::remove(path.c_str());

  DispatchEngineOptions opt = fast_options();
  opt.engine.mode = gpusim::SimMode::Timed;  // GPU-routed, match-free
  opt.engine.device_memory_bytes = 256u << 20;
  opt.calibrate = true;
  opt.tune_cache_path = path;
  opt.autotune_on_miss = true;
  opt.tune_budget = TuneBudget::small();

  const std::string text = make_text(2u << 20, 11);  // deep in GPU territory
  {
    DispatchEngine engine = make_engine(opt);
    auto scan = engine.scan(text);
    ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
    EXPECT_EQ(scan.value().backend, Backend::kGpuPipeline);
    const DispatchStats stats = engine.dispatcher().stats();
    EXPECT_EQ(stats.tune_cache_misses, 1u);
    EXPECT_EQ(stats.tunes, 1u);
    EXPECT_GE(engine.tune_cache().size(), 1u);
    ASSERT_TRUE(engine.save_tune_cache().is_ok());
  }
  {
    DispatchEngine engine = make_engine(opt);
    auto scan = engine.scan(text);
    ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
    EXPECT_EQ(scan.value().backend, Backend::kGpuPipeline);
    const DispatchStats stats = engine.dispatcher().stats();
    EXPECT_EQ(stats.tunes, 0u) << "second run must replay, not re-tune";
    EXPECT_EQ(stats.tune_cache_hits, 1u);
    EXPECT_EQ(stats.tune_cache_misses, 0u);
  }
  std::remove(path.c_str());
}

TEST(DispatchEngine, ServeWiredDispatcherStaysConformant) {
  const ac::PatternSet patterns(test_patterns());
  const ac::Automaton automaton(patterns);
  const ac::Dfa dfa(automaton, patterns, /*pad_pitch_to=*/8);
  Dispatcher dispatcher(dfa);

  serve::ServeOptions opt;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  opt.dispatcher = &dispatcher;
  auto srv = serve::StreamService::create(patterns, opt);
  ASSERT_TRUE(srv.is_ok()) << srv.status().to_string();

  const std::string text = make_text(8192, 3);
  std::vector<ac::Match> expected = ac::find_all(srv.value().dfa(), text);
  ac::normalize_matches(expected);

  const serve::SessionId id = srv.value().open().value();
  for (std::size_t pos = 0; pos < text.size(); pos += 512)
    ASSERT_TRUE(
        srv.value().feed(id, std::string_view(text).substr(pos, 512)).is_ok());
  ASSERT_TRUE(srv.value().drain().is_ok());
  auto polled = srv.value().poll(id);
  ASSERT_TRUE(polled.is_ok()) << polled.status().to_string();
  std::vector<ac::Match> got = std::move(polled).value();
  ac::normalize_matches(got);
  EXPECT_EQ(got, expected);

  // The service consulted the shared dispatcher for its superbatches.
  const DispatchStats stats = dispatcher.stats();
  std::uint64_t total = 0;
  for (int b = 0; b < kBackendCount; ++b) total += stats.decisions[b];
  EXPECT_GE(total, 1u);
}

}  // namespace
}  // namespace acgpu::dispatch
