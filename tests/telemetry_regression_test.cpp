// The perf-regression gate: baseline parsing, verdicts (including the
// demonstration that a degraded overlap ratio FAILS the checked-in bounds),
// and the --write-baseline banding round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/metrics_registry.h"
#include "telemetry/regression.h"

namespace acgpu::telemetry {
namespace {

constexpr const char* kBaselineJson = R"({
  "workload": {"size_bytes": 8388608, "streams": 4},
  "checks": [
    {"name": "pipeline.overlap_ratio", "min": 0.90},
    {"name": "gpusim.shared.max_degree", "min": 1, "max": 2},
    {"name": "gpusim.tex.hit_rate", "min": 0.20}
  ]
})";

MetricsSnapshot healthy_snapshot() {
  MetricsRegistry reg;
  reg.gauge("pipeline.overlap_ratio").set(0.95);
  reg.gauge("gpusim.shared.max_degree").set(2);
  reg.gauge("gpusim.tex.hit_rate").set(0.24);
  return reg.snapshot();
}

TEST(RegressionBaseline, ParsesChecksWithBounds) {
  const Result<RegressionBaseline> b = parse_baseline(kBaselineJson);
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  ASSERT_EQ(b.value().checks.size(), 3u);
  EXPECT_EQ(b.value().checks[0].name, "pipeline.overlap_ratio");
  EXPECT_EQ(b.value().checks[0].min, 0.90);
  EXPECT_FALSE(b.value().checks[0].max.has_value());
  EXPECT_EQ(b.value().checks[1].min, 1.0);
  EXPECT_EQ(b.value().checks[1].max, 2.0);
}

TEST(RegressionBaseline, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_baseline("not json").is_ok());
  EXPECT_FALSE(parse_baseline("{}").is_ok());  // no checks array
  EXPECT_FALSE(parse_baseline(R"({"checks": [{"min": 1}]})").is_ok());
  EXPECT_FALSE(  // a check needs at least one bound
      parse_baseline(R"({"checks": [{"name": "a.b"}]})").is_ok());
  EXPECT_FALSE(  // inverted band
      parse_baseline(R"({"checks": [{"name": "a.b", "min": 2, "max": 1}]})")
          .is_ok());
}

TEST(Regression, HealthySnapshotPasses) {
  const Result<RegressionBaseline> b = parse_baseline(kBaselineJson);
  ASSERT_TRUE(b.is_ok());
  const RegressionVerdict v = check_regression(healthy_snapshot(), b.value());
  EXPECT_TRUE(v.pass());
  EXPECT_EQ(v.checks, 3u);
}

// The acceptance demo: degrade the overlap ratio (what dropping to one
// stream does to the pipeline) and the gate must fail with a verdict that
// names the series.
TEST(Regression, DegradedOverlapRatioFails) {
  MetricsRegistry reg;
  reg.gauge("pipeline.overlap_ratio").set(0.0);  // single-stream: no overlap
  reg.gauge("gpusim.shared.max_degree").set(2);
  reg.gauge("gpusim.tex.hit_rate").set(0.24);
  const Result<RegressionBaseline> b = parse_baseline(kBaselineJson);
  ASSERT_TRUE(b.is_ok());
  const RegressionVerdict v = check_regression(reg.snapshot(), b.value());
  EXPECT_FALSE(v.pass());
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0].name, "pipeline.overlap_ratio");
  EXPECT_FALSE(v.violations[0].missing);
  EXPECT_NE(v.violations[0].detail.find("below min"), std::string::npos);
}

TEST(Regression, ValueAboveMaxFails) {
  MetricsRegistry reg;
  reg.gauge("pipeline.overlap_ratio").set(0.95);
  reg.gauge("gpusim.shared.max_degree").set(16);  // naive-layout regression
  reg.gauge("gpusim.tex.hit_rate").set(0.24);
  const Result<RegressionBaseline> b = parse_baseline(kBaselineJson);
  ASSERT_TRUE(b.is_ok());
  const RegressionVerdict v = check_regression(reg.snapshot(), b.value());
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0].name, "gpusim.shared.max_degree");
  EXPECT_NE(v.violations[0].detail.find("above max"), std::string::npos);
}

TEST(Regression, MissingSeriesIsAViolation) {
  MetricsRegistry reg;  // publishes nothing
  const Result<RegressionBaseline> b = parse_baseline(kBaselineJson);
  ASSERT_TRUE(b.is_ok());
  const RegressionVerdict v = check_regression(reg.snapshot(), b.value());
  EXPECT_EQ(v.violations.size(), 3u);
  for (const RegressionViolation& violation : v.violations)
    EXPECT_TRUE(violation.missing);
}

TEST(Regression, VerdictTableNamesEveryCheck) {
  const Result<RegressionBaseline> b = parse_baseline(kBaselineJson);
  ASSERT_TRUE(b.is_ok());
  std::ostringstream out;
  write_verdict_table(healthy_snapshot(), b.value(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("pipeline.overlap_ratio"), std::string::npos);
  EXPECT_NE(text.find("gpusim.shared.max_degree"), std::string::npos);
  EXPECT_NE(text.find("gpusim.tex.hit_rate"), std::string::npos);
  EXPECT_NE(text.find("ok"), std::string::npos);
}

// --write-baseline round trip: the banded baseline parses back and the
// snapshot it was derived from passes it.
TEST(Regression, WriteBaselineBandsCurrentValues) {
  const MetricsSnapshot snap = healthy_snapshot();
  std::ostringstream out;
  write_baseline(snap,
                 {"pipeline.overlap_ratio", "gpusim.shared.max_degree",
                  "gpusim.tex.hit_rate"},
                 /*slack=*/0.10, out);
  const Result<RegressionBaseline> b = parse_baseline(out.str());
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  ASSERT_EQ(b.value().checks.size(), 3u);
  const RegressionVerdict v = check_regression(snap, b.value());
  EXPECT_TRUE(v.pass()) << (v.violations.empty() ? "" : v.violations[0].detail);
  // Bands really are value +/- slack.
  for (const RegressionCheck& c : b.value().checks) {
    const double value = snap.value(c.name).value();
    ASSERT_TRUE(c.min.has_value());
    ASSERT_TRUE(c.max.has_value());
    EXPECT_NEAR(*c.min, value * 0.90, 1e-9);
    EXPECT_NEAR(*c.max, value * 1.10, 1e-9);
  }
}

}  // namespace
}  // namespace acgpu::telemetry
