// MetricsRegistry: naming contract, kind safety, snapshot/serialisation
// round trips, and concurrent publishing (the parallel matchers publish from
// worker threads — build with -DACGPU_TSAN=ON to run this file under
// ThreadSanitizer).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/metrics_registry.h"
#include "util/error.h"

namespace acgpu::telemetry {
namespace {

TEST(MetricName, ValidatesDottedLowercaseScheme) {
  EXPECT_TRUE(valid_metric_name("gpusim.shared.conflict_cycles"));
  EXPECT_TRUE(valid_metric_name("pipeline.batch.h2d_ns"));
  EXPECT_TRUE(valid_metric_name("a"));
  EXPECT_TRUE(valid_metric_name("a1.b_2"));

  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("."));
  EXPECT_FALSE(valid_metric_name("a."));
  EXPECT_FALSE(valid_metric_name(".a"));
  EXPECT_FALSE(valid_metric_name("a..b"));
  EXPECT_FALSE(valid_metric_name("Upper.case"));
  EXPECT_FALSE(valid_metric_name("sp ace"));
  EXPECT_FALSE(valid_metric_name("da-sh"));
}

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  reg.counter("t.count").add(3);
  reg.counter("t.count").add();
  reg.gauge("t.gauge").set(2.5);
  reg.histogram("t.hist").observe(1);
  reg.histogram("t.hist").observe(3);

  EXPECT_EQ(reg.counter("t.count").value(), 4u);
  EXPECT_DOUBLE_EQ(reg.gauge("t.gauge").value(), 2.5);
  const HistogramSummary h = reg.histogram("t.hist").summary();
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.mean, 2.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, GaugeSetMaxKeepsWorstCase) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("t.max");
  g.set_max(2);
  g.set_max(1);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set_max(5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(MetricsRegistry, RejectsMalformedNamesAndKindMismatches) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("Bad.Name"), Error);
  EXPECT_THROW(reg.gauge(""), Error);
  reg.counter("t.series");
  EXPECT_THROW(reg.gauge("t.series"), Error);
  EXPECT_THROW(reg.histogram("t.series"), Error);
  EXPECT_NO_THROW(reg.counter("t.series"));  // same kind: find, not create
}

TEST(MetricsRegistry, SnapshotIsSortedAndExpandsHistograms) {
  MetricsRegistry reg;
  reg.gauge("z.last").set(9);
  reg.counter("a.first").add(1);
  reg.histogram("m.lat").observe(10);
  reg.histogram("m.lat").observe(20);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_FALSE(snap.entries.empty());
  for (std::size_t i = 1; i < snap.entries.size(); ++i)
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);

  EXPECT_EQ(snap.value("a.first"), 1.0);
  EXPECT_EQ(snap.value("z.last"), 9.0);
  // Histogram series expand into derived names.
  EXPECT_EQ(snap.value("m.lat.count"), 2.0);
  EXPECT_EQ(snap.value("m.lat.mean"), 15.0);
  EXPECT_EQ(snap.value("m.lat.min"), 10.0);
  EXPECT_EQ(snap.value("m.lat.max"), 20.0);
  ASSERT_TRUE(snap.value("m.lat.p50").has_value());
  ASSERT_TRUE(snap.value("m.lat.p90").has_value());
  ASSERT_TRUE(snap.value("m.lat.p99").has_value());
  EXPECT_FALSE(snap.value("m.lat").has_value());
  EXPECT_FALSE(snap.value("no.such").has_value());
}

TEST(MetricsRegistry, JsonSnapshotRoundTrips) {
  MetricsRegistry reg;
  reg.counter("rt.count").add(7);
  reg.gauge("rt.ratio").set(0.25);
  reg.histogram("rt.ns").observe(100);

  std::ostringstream json;
  reg.snapshot().write_json(json);
  const std::optional<MetricsSnapshot> back = parse_snapshot(json.str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries.size(), reg.snapshot().entries.size());
  EXPECT_EQ(back->value("rt.count"), 7.0);
  EXPECT_EQ(back->value("rt.ratio"), 0.25);
  EXPECT_EQ(back->value("rt.ns.count"), 1.0);

  EXPECT_FALSE(parse_snapshot("not json").has_value());
  EXPECT_FALSE(parse_snapshot("{\"nope\":1}").has_value());
}

TEST(MetricsRegistry, CsvSnapshotHasHeaderAndAllSeries) {
  MetricsRegistry reg;
  reg.counter("c.one").add(1);
  reg.gauge("g.two").set(2);
  std::ostringstream csv;
  reg.snapshot().write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("name,kind,value"), std::string::npos);
  EXPECT_NE(text.find("c.one,counter,"), std::string::npos);
  EXPECT_NE(text.find("g.two,gauge,"), std::string::npos);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.counter("t.a").add(1);
  reg.gauge("t.b").set(1);
  EXPECT_EQ(reg.size(), 2u);
  reg.reset();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.counter("t.a").value(), 0u);  // fresh metric after reset
}

// The TSAN satellite: concurrent registration and publishing from many
// threads, each mixing find-or-create with hot-path updates on shared and
// private series. Counter totals are exact because add() is atomic.
TEST(MetricsRegistry, ConcurrentPublishIsExactAndRaceFree) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string own = "worker.t" + std::to_string(t) + ".ops";
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared.ops").add();
        reg.counter(own).add();
        reg.gauge("shared.depth").set_max(static_cast<double>(i % 7));
        reg.histogram("shared.latency_ns").observe(static_cast<double>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(reg.counter("shared.ops").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("worker.t" + std::to_string(t) + ".ops").value(),
              static_cast<std::uint64_t>(kIters));
  EXPECT_DOUBLE_EQ(reg.gauge("shared.depth").value(), 6.0);
  EXPECT_EQ(reg.histogram("shared.latency_ns").summary().count,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace acgpu::telemetry
