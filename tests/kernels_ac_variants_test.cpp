// Tests for the kernel variants beyond the paper's two: the STT-placement
// ablation (texture vs global) and the double-buffered multi-tile kernel.
#include <gtest/gtest.h>

#include <algorithm>

#include "ac/serial_matcher.h"
#include "kernels/ac_kernel.h"
#include "util/error.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::kernels {
namespace {

struct Fixture {
  gpusim::GpuConfig cfg;
  gpusim::DeviceMemory mem;
  ac::PatternSet patterns;
  ac::Dfa dfa;
  DeviceDfa ddfa;
  gpusim::DevAddr text_addr;
  std::string text;

  Fixture(std::vector<std::string> pats, std::string text_in)
      : cfg(gpusim::GpuConfig::gtx285()),
        mem(64 << 20),
        patterns(std::move(pats)),
        dfa(ac::build_dfa(patterns, 8)),
        ddfa(mem, dfa),
        text_addr(0),
        text(std::move(text_in)) {
    cfg.num_sms = 4;
    text_addr = upload_text(mem, text);
  }

  AcLaunchOutcome run(AcLaunchSpec spec) {
    spec.sim.mode = gpusim::SimMode::Functional;
    const std::size_t mark = mem.mark();
    auto out = run_ac_kernel(cfg, mem, ddfa, text_addr, text.size(), spec);
    mem.release(mark);
    return out;
  }

  std::vector<ac::Match> expected() const {
    auto m = ac::find_all(dfa, text);
    std::sort(m.begin(), m.end());
    return m;
  }
};

AcLaunchSpec small_spec() {
  AcLaunchSpec spec;
  spec.chunk_bytes = 32;
  spec.threads_per_block = 64;
  spec.match_capacity = 64;
  return spec;
}

TEST(SttPlacement, GlobalPlacementMatchesSerial) {
  Fixture f({"he", "she", "his", "hers"}, workload::make_corpus(6000, 1) + " ushers");
  AcLaunchSpec spec = small_spec();
  spec.stt_placement = SttPlacement::kGlobal;
  for (auto approach : {Approach::kGlobalOnly, Approach::kShared}) {
    spec.approach = approach;
    EXPECT_EQ(f.run(spec).matches.matches, f.expected()) << to_string(approach);
  }
}

TEST(SttPlacement, GlobalPlacementSkipsTextureAndIsSlower) {
  Fixture f({"the", "and", "tion"}, workload::make_corpus(16384, 2));
  AcLaunchSpec spec = small_spec();
  spec.approach = Approach::kShared;
  spec.stt_placement = SttPlacement::kGlobal;
  const auto via_global = f.run(spec);
  spec.stt_placement = SttPlacement::kTexture;
  const auto via_texture = f.run(spec);
  // No texture traffic at all in the global-placement run...
  EXPECT_EQ(via_global.sim.metrics.tex_requests, 0u);
  EXPECT_GT(via_texture.sim.metrics.tex_requests, 0u);
  // ...and far more global transactions (scattered uncached STT reads),
  // which is exactly why the paper puts the STT in texture memory.
  EXPECT_GT(via_global.sim.metrics.global_transactions,
            via_texture.sim.metrics.global_transactions * 4);
  EXPECT_GT(via_global.sim.cycles, via_texture.sim.cycles);
}

TEST(DoubleBuffer, MatchesSerialAcrossTileCounts) {
  Fixture f({"boundary", "ound", "the"},
            workload::make_corpus(40000, 3) + "boundaryboundary");
  for (std::uint32_t tiles : {2u, 3u, 4u}) {
    AcLaunchSpec spec = small_spec();
    spec.approach = Approach::kShared;
    spec.tiles_per_block = tiles;
    const auto out = f.run(spec);
    EXPECT_EQ(out.matches.matches, f.expected()) << tiles << " tiles";
    EXPECT_FALSE(out.matches.overflowed);
  }
}

TEST(DoubleBuffer, MatchesAtTileBoundaries) {
  // Patterns planted across tile boundaries (tile = tpb * chunk = 2048 B);
  // positions chosen non-overlapping.
  std::string text(12000, 'x');
  for (std::size_t pos : {2040ul, 2060ul, 4090ul, 6140ul, 8185ul})
    text.replace(pos, 8, "boundary");
  Fixture f({"boundary"}, std::move(text));
  AcLaunchSpec spec = small_spec();
  spec.approach = Approach::kShared;
  spec.tiles_per_block = 3;
  const auto out = f.run(spec);
  EXPECT_EQ(out.matches.matches, f.expected());
  ASSERT_EQ(out.matches.matches.size(), 5u);
}

TEST(DoubleBuffer, RaggedTailTile) {
  // Text not a multiple of the tile size; final tile partially filled and
  // some blocks have empty trailing tiles.
  Fixture f({"ab", "abc"}, workload::make_corpus(10007, 4) + "ab");
  AcLaunchSpec spec = small_spec();
  spec.approach = Approach::kShared;
  spec.tiles_per_block = 4;
  EXPECT_EQ(f.run(spec).matches.matches, f.expected());
}

TEST(DoubleBuffer, UsesAsyncLoadsAndFewerBlocks) {
  Fixture f({"qzk"}, workload::make_corpus(32768, 5));
  AcLaunchSpec base = small_spec();
  base.approach = Approach::kShared;
  const auto plain = f.run(base);
  AcLaunchSpec db = base;
  db.tiles_per_block = 4;
  const auto buffered = f.run(db);
  EXPECT_EQ(buffered.blocks * 4, plain.blocks);
  EXPECT_EQ(buffered.matches.matches, plain.matches.matches);
  // Double the staged region (two halves).
  EXPECT_EQ(buffered.shared_bytes, plain.shared_bytes * 2);
}

TEST(DoubleBuffer, HidesStagingLatency) {
  // Controlled comparison at equal occupancy (one resident block per SM —
  // the regime double buffering exists for): prefetching the next tile
  // must beat staging it synchronously.
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.max_blocks_per_sm = 1;
  gpusim::DeviceMemory mem(128 << 20);
  // Sized so both grids divide evenly across the 30 SMs (no tail-wave
  // imbalance): 30 SMs * 4 tiles * 192 threads * 32 B * 2.
  const std::string text = workload::make_corpus(30u * 4 * 192 * 32 * 2, 6);
  const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"qzkw"}), 8);
  const DeviceDfa ddfa(mem, dfa);
  const auto addr = upload_text(mem, text);

  auto timed = [&](std::uint32_t tiles) {
    AcLaunchSpec spec;
    spec.approach = Approach::kShared;
    spec.chunk_bytes = 32;
    spec.threads_per_block = 192;
    spec.tiles_per_block = tiles;
    spec.sim.mode = gpusim::SimMode::Timed;
    const std::size_t mark = mem.mark();
    const auto out = run_ac_kernel(cfg, mem, ddfa, addr, text.size(), spec);
    mem.release(mark);
    return out.sim.cycles;
  };
  const double plain = timed(1);
  const double buffered = timed(4);
  EXPECT_LT(buffered, plain);
}

TEST(DoubleBuffer, ValidatesSpec) {
  Fixture f({"abc"}, "text with abc");
  AcLaunchSpec spec = small_spec();
  spec.tiles_per_block = 2;
  spec.approach = Approach::kGlobalOnly;
  EXPECT_THROW(run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr, f.text.size(), spec),
               Error);
  spec.approach = Approach::kShared;
  spec.scheme = StoreScheme::kSequential;
  EXPECT_THROW(run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr, f.text.size(), spec),
               Error);
  spec.scheme = StoreScheme::kDiagonal;
  spec.tiles_per_block = 0;
  EXPECT_THROW(run_ac_kernel(f.cfg, f.mem, f.ddfa, f.text_addr, f.text.size(), spec),
               Error);
}

TEST(DoubleBuffer, WorksWithNaiveSchemeToo) {
  Fixture f({"he", "she"}, workload::make_corpus(20000, 7));
  AcLaunchSpec spec = small_spec();
  spec.approach = Approach::kShared;
  spec.scheme = StoreScheme::kCoalescedNaive;
  spec.tiles_per_block = 2;
  EXPECT_EQ(f.run(spec).matches.matches, f.expected());
}

}  // namespace
}  // namespace acgpu::kernels
