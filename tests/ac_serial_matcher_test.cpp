#include "ac/serial_matcher.h"

#include <gtest/gtest.h>

#include "ac/naive_matcher.h"
#include "ac/nfa_matcher.h"

namespace acgpu::ac {
namespace {

Dfa paper_dfa() { return build_dfa(PatternSet({"he", "she", "his", "hers"})); }

TEST(SerialMatcher, PaperUshersExample) {
  const auto matches = find_all(paper_dfa(), "ushers");
  // "she" ends at 3, "he" ends at 3, "hers" ends at 5.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{3, 0}));  // he
  EXPECT_EQ(matches[1], (Match{3, 1}));  // she
  EXPECT_EQ(matches[2], (Match{5, 3}));  // hers
}

TEST(SerialMatcher, NoMatches) {
  EXPECT_TRUE(find_all(paper_dfa(), "zzzzzz").empty());
  EXPECT_EQ(count_matches(paper_dfa(), "zzzzzz"), 0u);
}

TEST(SerialMatcher, EmptyText) {
  EXPECT_TRUE(find_all(paper_dfa(), "").empty());
}

TEST(SerialMatcher, OverlappingOccurrences) {
  Dfa dfa = build_dfa(PatternSet({"aa"}));
  const auto matches = find_all(dfa, "aaaa");
  // "aa" at ends 1, 2, 3.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].end, 1u);
  EXPECT_EQ(matches[1].end, 2u);
  EXPECT_EQ(matches[2].end, 3u);
}

TEST(SerialMatcher, NestedPatterns) {
  Dfa dfa = build_dfa(PatternSet({"a", "ab", "abc"}));
  const auto matches = find_all(dfa, "abc");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{0, 0}));
  EXPECT_EQ(matches[1], (Match{1, 1}));
  EXPECT_EQ(matches[2], (Match{2, 2}));
}

TEST(SerialMatcher, BaseOffsetsReportedEnds) {
  CollectSink sink;
  match_serial(paper_dfa(), "ushers", sink, /*base=*/1000);
  ASSERT_EQ(sink.matches().size(), 3u);
  EXPECT_EQ(sink.matches()[0].end, 1003u);
}

TEST(SerialMatcher, ResumableState) {
  Dfa dfa = paper_dfa();
  CollectSink sink;
  // Split "ushers" across two calls, threading the state through.
  const std::int32_t mid = match_serial(dfa, "ush", sink, 0);
  match_serial(dfa, "ers", sink, 3, mid);
  ASSERT_EQ(sink.matches().size(), 3u);
  EXPECT_EQ(sink.matches()[0].end, 3u);
  EXPECT_EQ(sink.matches()[2].end, 5u);
}

TEST(SerialMatcher, CountMatchesAgreesWithFindAll) {
  Dfa dfa = paper_dfa();
  const std::string text = "she sells seashells; he hears hers, his and hers";
  EXPECT_EQ(count_matches(dfa, text), find_all(dfa, text).size());
}

TEST(SerialMatcher, MatchesAtTextBoundaries) {
  Dfa dfa = build_dfa(PatternSet({"ab"}));
  const auto m1 = find_all(dfa, "abxx");
  ASSERT_EQ(m1.size(), 1u);
  EXPECT_EQ(m1[0].end, 1u);
  const auto m2 = find_all(dfa, "xxab");
  ASSERT_EQ(m2.size(), 1u);
  EXPECT_EQ(m2[0].end, 3u);
}

TEST(SerialMatcher, BinaryPatternsAndText) {
  Dfa dfa = build_dfa(PatternSet({std::string("\x00\x01", 2), std::string("\xff", 1)}));
  std::string text;
  text.push_back('\x00');
  text.push_back('\x01');
  text.push_back('\xff');
  const auto matches = find_all(dfa, text);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (Match{1, 0}));
  EXPECT_EQ(matches[1], (Match{2, 1}));
}

TEST(NfaMatcher, AgreesWithSerialOnPaperExample) {
  PatternSet set({"he", "she", "his", "hers"});
  Automaton nfa(set);
  Dfa dfa(nfa, set);
  const std::string text = "ushers and sheep hide his herbs";
  auto a = find_all(dfa, text);
  auto b = find_all_nfa(nfa, text);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(NaiveMatcher, PaperExampleGroundTruth) {
  PatternSet set({"he", "she", "his", "hers"});
  const auto matches = find_all_naive(set, "ushers");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{3, 0}));
  EXPECT_EQ(matches[1], (Match{3, 1}));
  EXPECT_EQ(matches[2], (Match{5, 3}));
}

}  // namespace
}  // namespace acgpu::ac
