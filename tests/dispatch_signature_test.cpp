// Workload signatures and signature buckets: the dictionary-derived
// PatternStats, cheap per-batch extraction, log2 quantization, and the
// stable textual bucket keys the EWMA and the tune cache key on.
#include "dispatch/signature.h"

#include <gtest/gtest.h>

#include <string>

#include "ac/automaton.h"
#include "ac/dfa.h"
#include "ac/pattern_set.h"

namespace acgpu::dispatch {
namespace {

struct Fixture {
  ac::PatternSet patterns{{"he", "she", "his", "hers"}};
  ac::Automaton automaton{patterns};
  ac::Dfa dfa{automaton, patterns, /*pad_pitch_to=*/8};
};

TEST(DispatchSignature, PatternStatsComeFromTheDictionary) {
  Fixture fx;
  const PatternStats stats = compute_pattern_stats(fx.dfa);
  EXPECT_EQ(stats.pattern_count, 4u);
  EXPECT_EQ(stats.max_pattern_len, 4u);  // "hers"
  EXPECT_DOUBLE_EQ(stats.avg_pattern_len, (2 + 3 + 3 + 4) / 4.0);
  EXPECT_GT(stats.state_count, 0u);
  EXPECT_GT(stats.stt_bytes, 0u);
}

TEST(DispatchSignature, ExtractionFillsTextAndSessionFields) {
  Fixture fx;
  const PatternStats stats = compute_pattern_stats(fx.dfa);
  const std::string text(1000, 'a');
  const WorkloadSignature bulk = make_signature(stats, text, /*session=*/false);
  EXPECT_EQ(bulk.text_bytes, 1000u);
  EXPECT_EQ(bulk.pattern_count, 4u);
  EXPECT_FALSE(bulk.session);
  // One distinct byte value in the sample.
  EXPECT_DOUBLE_EQ(bulk.alphabet_density, 1.0 / 256.0);

  const WorkloadSignature sess = make_signature(stats, text, /*session=*/true);
  EXPECT_TRUE(sess.session);
}

TEST(DispatchSignature, DensityGrowsWithAlphabetAndStaysBounded) {
  Fixture fx;
  std::string wide;
  for (int i = 0; i < 256; ++i) wide.push_back(static_cast<char>(i));
  const WorkloadSignature sig = make_signature(fx.dfa, wide);
  EXPECT_GT(sig.alphabet_density, 0.5);
  EXPECT_LE(sig.alphabet_density, 1.0);
}

TEST(DispatchSignature, BucketsQuantizeByLog2) {
  Fixture fx;
  const PatternStats stats = compute_pattern_stats(fx.dfa);
  // 4096 and 8191 share floor(log2) = 12; 8192 starts the next class.
  const SignatureBucket b0 =
      bucket_of(make_signature(stats, std::string(4096, 'x')));
  const SignatureBucket b1 =
      bucket_of(make_signature(stats, std::string(8191, 'x')));
  const SignatureBucket b2 =
      bucket_of(make_signature(stats, std::string(8192, 'x')));
  EXPECT_EQ(b0.size_class, 12);
  EXPECT_EQ(b0, b1);
  EXPECT_EQ(b2.size_class, 13);
  EXPECT_NE(b0, b2);
}

TEST(DispatchSignature, EmptyTextIsSizeClassZero) {
  Fixture fx;
  const SignatureBucket b = bucket_of(make_signature(fx.dfa, ""));
  EXPECT_EQ(b.size_class, 0);
}

TEST(DispatchSignature, SessionBitSplitsBuckets) {
  Fixture fx;
  const PatternStats stats = compute_pattern_stats(fx.dfa);
  const std::string text(1024, 'a');
  const SignatureBucket bulk =
      bucket_of(make_signature(stats, text, /*session=*/false));
  const SignatureBucket sess =
      bucket_of(make_signature(stats, text, /*session=*/true));
  EXPECT_NE(bulk, sess);
  EXPECT_NE(bucket_key(bulk), bucket_key(sess));
}

TEST(DispatchSignature, BucketKeyIsStableAndParseable) {
  Fixture fx;
  const SignatureBucket b = bucket_of(make_signature(fx.dfa, std::string(4096, 'a')));
  const std::string key = bucket_key(b);
  // "s12.p2.l2.d0.bulk" shape: the size class and the bulk/sess suffix are
  // the contract the tune-cache file format depends on.
  EXPECT_EQ(key.find("s12."), 0u);
  EXPECT_NE(key.find(".bulk"), std::string::npos);
  EXPECT_EQ(key, bucket_key(b)) << "key must be deterministic";
}

}  // namespace
}  // namespace acgpu::dispatch
