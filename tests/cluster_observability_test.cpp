// The fleet observability seams of cluster::Router: end-to-end trace-id
// joins (router.feed -> serve.superbatch -> ... -> kernel.simulate), the
// per-process Chrome-trace layout, postmortem dumps on mark_failed, and the
// SLO monitor closing the loop into placement.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acgpu.h"

namespace acgpu {
namespace {

ac::PatternSet patterns() {
  return ac::PatternSet({"he", "she", "his", "hers", "ab"});
}

cluster::ClusterOptions base_options(std::uint32_t devices) {
  cluster::ClusterOptions opt;
  opt.devices = devices;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.admission = serve::AdmissionPolicy::kAutoFlush;
  return opt;
}

std::string feed_some_traffic(cluster::Router& cl, int sessions = 4) {
  const std::string stream = "ushers and his hershey shed; ab abba";
  for (int s = 0; s < sessions; ++s) {
    const serve::SessionId id = cl.open().value();
    EXPECT_TRUE(cl.feed(id, stream).is_ok());
  }
  EXPECT_TRUE(cl.drain().is_ok());
  return stream;
}

// --- tracing ---------------------------------------------------------------

TEST(ClusterObservabilityTest, TraceJoinsFeedThroughKernelAcrossProcesses) {
  cluster::ClusterOptions opt = base_options(2);
  opt.trace = true;
  Result<cluster::Router> router = cluster::Router::create(patterns(), opt);
  ASSERT_TRUE(router.is_ok()) << router.status().to_string();
  cluster::Router& cl = router.value();

  feed_some_traffic(cl);
  ASSERT_TRUE(cl.scan("she sells seashells; his hers abba").is_ok());

  std::ostringstream out;
  ASSERT_TRUE(cl.write_trace(out).is_ok());
  const auto doc = telemetry::parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  const telemetry::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Satellite fix: the fleet renders as distinct processes — the router's
  // clock domain, each shard's host clock, and each shard's simulated
  // device clock — instead of N shards colliding in two processes.
  std::set<std::string> processes;
  std::set<double> pids;
  for (const telemetry::JsonValue& e : events->array()) {
    pids.insert(e.number_at("pid").value_or(-1));
    const telemetry::JsonValue* name = e.find("name");
    if (name != nullptr && name->is_string() && name->string() == "process_name")
      processes.insert(e.find("args")->find("name")->string());
  }
  EXPECT_TRUE(processes.count("cluster router"));
  EXPECT_TRUE(processes.count("shard 0 host"));
  EXPECT_TRUE(processes.count("shard 1 host"));
  EXPECT_GE(pids.size(), 4u);  // router + 2 hosts + >= 1 device timeline

  // The causal join: every router.feed minted a trace id; each id must
  // reappear in the trace_ids list of some serve.superbatch span, and the
  // shard-host processes must carry the scan chain down to the kernel.
  std::vector<std::string> feed_ids;
  std::vector<std::string> superbatch_lists;
  std::set<std::string> span_names;
  for (const telemetry::JsonValue& e : events->array()) {
    const telemetry::JsonValue* name = e.find("name");
    if (name == nullptr || !name->is_string()) continue;
    span_names.insert(name->string());
    const telemetry::JsonValue* args = e.find("args");
    if (name->string() == "router.feed" && args != nullptr)
      feed_ids.push_back(args->find("trace_id")->string());
    if (name->string() == "serve.superbatch" && args != nullptr)
      superbatch_lists.push_back(args->find("trace_ids")->string());
  }
  ASSERT_FALSE(feed_ids.empty());
  ASSERT_FALSE(superbatch_lists.empty());
  for (const std::string& id : feed_ids) {
    bool joined = false;
    for (const std::string& list : superbatch_lists)
      joined = joined || list.find(id) != std::string::npos;
    EXPECT_TRUE(joined) << "trace id " << id << " never joined a superbatch";
  }
  EXPECT_TRUE(span_names.count("engine.scan"));
  EXPECT_TRUE(span_names.count("pipeline.batch"));
  EXPECT_TRUE(span_names.count("kernel.simulate"));
  EXPECT_TRUE(span_names.count("router.scan"));
}

TEST(ClusterObservabilityTest, WriteTraceRequiresTracingOn) {
  Result<cluster::Router> router =
      cluster::Router::create(patterns(), base_options(2));
  ASSERT_TRUE(router.is_ok());
  std::ostringstream out;
  const Status s = router.value().write_trace(out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --- flight recorder / postmortem ------------------------------------------

TEST(ClusterObservabilityTest, MarkFailedDumpsAPostmortemWithShardEvents) {
  telemetry::FlightRecorder recorder;
  telemetry::MetricsRegistry registry;
  const std::string path =
      ::testing::TempDir() + "cluster_observability_postmortem.json";
  cluster::ClusterOptions opt = base_options(2);
  opt.recorder = &recorder;
  opt.metrics = &registry;
  opt.postmortem_path = path;
  Result<cluster::Router> router = cluster::Router::create(patterns(), opt);
  ASSERT_TRUE(router.is_ok());
  cluster::Router& cl = router.value();

  feed_some_traffic(cl);
  ASSERT_TRUE(cl.mark_failed(0).is_ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "postmortem was not written to " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = telemetry::parse_json(buf.str());
  ASSERT_TRUE(doc.has_value());
  const telemetry::JsonValue* pm = doc->find("postmortem");
  ASSERT_NE(pm, nullptr);
  EXPECT_NE(pm->find("reason")->string().find("shard 0"), std::string::npos);

  // The dump must hold the failed shard's last-window story: the admissions
  // that preceded the failure and the failure event itself.
  bool saw_admission = false, saw_failure = false;
  for (const telemetry::JsonValue& e : pm->find("events")->array()) {
    const std::string& kind = e.find("kind")->string();
    if (kind == "admission" && e.number_at("shard") == 0.0) saw_admission = true;
    if (kind == "shard_failure" && e.number_at("shard") == 0.0) saw_failure = true;
  }
  EXPECT_TRUE(saw_admission);
  EXPECT_TRUE(saw_failure);
  // Joined with the metrics snapshot.
  ASSERT_NE(doc->find("metrics"), nullptr);
  EXPECT_GT(doc->find("metrics")->number_at("router.feeds").value_or(0), 0.0);
}

TEST(ClusterObservabilityTest, ExplicitPostmortemRequiresARecorder) {
  Result<cluster::Router> router =
      cluster::Router::create(patterns(), base_options(2));
  ASSERT_TRUE(router.is_ok());
  std::ostringstream out;
  EXPECT_EQ(router.value().write_postmortem(out, "why not").code(),
            StatusCode::kInvalidArgument);

  telemetry::FlightRecorder recorder;
  cluster::ClusterOptions opt = base_options(2);
  opt.recorder = &recorder;
  Result<cluster::Router> armed = cluster::Router::create(patterns(), opt);
  ASSERT_TRUE(armed.is_ok());
  feed_some_traffic(armed.value());
  std::ostringstream dump;
  ASSERT_TRUE(armed.value().write_postmortem(dump, "on demand").is_ok());
  const auto doc = telemetry::parse_json(dump.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("postmortem")->find("reason")->string(), "on demand");
}

// --- SLO monitor driving placement -----------------------------------------

TEST(ClusterObservabilityTest, PlacementShiftsAwayFromAnSloBreachedShard) {
  cluster::ClusterOptions opt = base_options(2);
  opt.slo.error_rate = {0.05, 0.25};
  opt.slo.window = 16;
  opt.slo.min_samples = 4;
  opt.health_eval_interval = 2;
  opt.session_limits.max_bytes = 64;  // tiny quota: easy to overfeed
  Result<cluster::Router> router = cluster::Router::create(patterns(), opt);
  ASSERT_TRUE(router.is_ok());
  cluster::Router& cl = router.value();

  // One session per shard, then overfeed the one homed on shard 0 until its
  // quota errors fill the health window.
  const serve::SessionId a = cl.open().value();
  const serve::SessionId b = cl.open().value();
  const serve::SessionId on_zero = cl.shard_of(a).value() == 0 ? a : b;
  ASSERT_EQ(cl.shard_of(on_zero).value(), 0u);
  const std::string chunk(32, 'h');
  int errors = 0;
  for (int i = 0; i < 12; ++i) {
    const Status s = cl.feed(on_zero, chunk);
    if (!s.is_ok()) {
      EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
      ++errors;
    }
  }
  EXPECT_GE(errors, 8);
  EXPECT_EQ(cl.shard_health_state(0), telemetry::HealthState::kUnhealthy);
  EXPECT_NE(cl.shard_health(0).value().breached.find("error_rate"),
            std::string::npos);
  EXPECT_EQ(cl.shard_stats(0).value().health, telemetry::HealthState::kUnhealthy);

  // Unhealthy = failed-soft: every new session homes on the healthy shard
  // even though shard 0 carries fewer sessions.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(cl.shard_of(cl.open().value()).value(), 1u);
  // ...and the bulk path routes around it too.
  Result<cluster::ClusterScanResult> scan = cl.scan("ushers and his hershey");
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().devices_used, 1u);
}

TEST(ClusterObservabilityTest, HealthStateRecoversAndPlacementFollows) {
  cluster::ClusterOptions opt = base_options(2);
  opt.slo.error_rate = {0.05, 0.25};
  opt.slo.window = 8;
  opt.slo.min_samples = 4;
  opt.health_eval_interval = 1;
  opt.session_limits.max_bytes = 64;
  Result<cluster::Router> router = cluster::Router::create(patterns(), opt);
  ASSERT_TRUE(router.is_ok());
  cluster::Router& cl = router.value();

  const serve::SessionId a = cl.open().value();
  const serve::SessionId b = cl.open().value();
  const serve::SessionId on_zero = cl.shard_of(a).value() == 0 ? a : b;
  const serve::SessionId on_one = cl.shard_of(a).value() == 0 ? b : a;
  const std::string chunk(32, 'h');
  for (int i = 0; i < 10; ++i) (void)cl.feed(on_zero, chunk);
  ASSERT_EQ(cl.shard_health_state(0), telemetry::HealthState::kUnhealthy);

  // A window of clean feeds on shard 0 slides the errors out. The evicted
  // session is gone (quota), so feed the OTHER shard-0 path: close and
  // reopen sessions until one homes there — unhealthy shards are failed-
  // soft, so first drain shard 1 of candidates is unnecessary; feeds on an
  // existing homed session still count.
  ASSERT_TRUE(cl.close(on_zero).is_ok());
  (void)on_one;
  const serve::SessionId fresh = cl.open().value();
  // New sessions avoid shard 0 while it is unhealthy...
  EXPECT_EQ(cl.shard_of(fresh).value(), 1u);
  cl.shutdown();
}

// --- option validation ------------------------------------------------------

TEST(ClusterObservabilityTest, ValidateRejectsRouterManagedTelemetryFields) {
  {
    cluster::ClusterOptions opt = base_options(2);
    opt.trace = true;
    telemetry::Tracer tracer;
    opt.engine.telemetry.tracer = &tracer;
    EXPECT_EQ(cluster::Router::create(patterns(), opt).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    cluster::ClusterOptions opt = base_options(2);
    telemetry::FlightRecorder recorder;
    opt.engine.telemetry.recorder = &recorder;
    EXPECT_EQ(cluster::Router::create(patterns(), opt).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    cluster::ClusterOptions opt = base_options(2);
    opt.health_eval_interval = 0;
    EXPECT_EQ(cluster::Router::create(patterns(), opt).status().code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace acgpu
