// Audit-harness coverage: every shipped kernel variant must audit clean and
// conformant over oracle workloads, the diagonal store scheme must hold its
// degree-1 bank budget where the naive scheme provably cannot, and the sweep
// entry point must aggregate per-target results.
#include "gpucheck/audit.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "oracle/workload_gen.h"
#include "telemetry/json.h"
#include "telemetry/metrics_registry.h"
#include "util/error.h"

namespace acgpu::gpucheck {
namespace {

using oracle::CompiledWorkload;
using oracle::Workload;

/// A workload whose text spans many chunks, so every store scheme runs with
/// full warps and the bank-conflict character of each layout is observable.
CompiledWorkload wide_workload() {
  Workload w;
  w.name = "gpucheck-wide";
  w.patterns = {"abc", "bcd", "dab", "cc", "abcdab"};
  std::string text;
  for (int i = 0; i < 600; ++i) text += "abcdabccdbcdab";
  w.text = std::move(text);
  return CompiledWorkload(std::move(w));
}

TEST(GpucheckAudit, TargetNamesRoundTrip) {
  for (const AuditTarget t : all_audit_targets())
    EXPECT_EQ(audit_target_from_name(to_string(t)), t);
  EXPECT_THROW(audit_target_from_name("no-such-kernel"), Error);
}

TEST(GpucheckAudit, EveryShippedTargetAuditsCleanAndConformant) {
  const CompiledWorkload w = wide_workload();
  for (const AuditTarget t : all_audit_targets()) {
    const AuditOutcome outcome = audit_workload(t, w);
    EXPECT_TRUE(outcome.report.clean())
        << to_string(t) << " reported " << outcome.report.total_hazards()
        << " hazard(s)";
    EXPECT_TRUE(outcome.matches_ok) << to_string(t);
    EXPECT_GT(outcome.match_count, 0u) << to_string(t);
    EXPECT_GT(outcome.report.accesses, 0u) << to_string(t);
  }
}

TEST(GpucheckAudit, OracleWorkloadsAuditClean) {
  for (std::uint64_t i = 0; i < 3; ++i) {
    const CompiledWorkload w(oracle::generate_workload(11, i));
    for (const AuditTarget t :
         {AuditTarget::kAcGlobal, AuditTarget::kAcSharedDiagonal,
          AuditTarget::kCompressed, AuditTarget::kPfac}) {
      const AuditOutcome outcome = audit_workload(t, w);
      EXPECT_TRUE(outcome.report.clean()) << to_string(t) << " workload " << i;
      EXPECT_TRUE(outcome.matches_ok) << to_string(t) << " workload " << i;
    }
  }
}

TEST(GpucheckAudit, DiagonalSchemeAuditsAtDegreeOne) {
  const AuditOutcome outcome =
      audit_workload(AuditTarget::kAcSharedDiagonal, wide_workload());
  EXPECT_TRUE(outcome.report.clean());
  EXPECT_GT(outcome.report.bank.accesses, 0u);
  EXPECT_EQ(outcome.report.bank.max_degree, 1u);
}

TEST(GpucheckAudit, NaiveSchemeConflictsAndBreaksADegreeOneBudget) {
  AuditOutcome outcome =
      audit_workload(AuditTarget::kAcSharedNaive, wide_workload());
  // Its own budget EXPECTS conflicts, so the shipped audit is clean...
  EXPECT_TRUE(outcome.report.clean());
  EXPECT_GT(outcome.report.bank.max_degree, 1u);

  // ...but imposing the diagonal scheme's budget on the same report must
  // fire, with the worst conflicting access site attached.
  Budget diagonal;
  diagonal.max_bank_degree = 1;
  apply_budget(outcome.report, diagonal);
  ASSERT_GE(outcome.report.count(HazardKind::kBankConflictBudget), 1u);
  bool sited = false;
  for (const Hazard& h : outcome.report.hazards)
    if (h.kind == HazardKind::kBankConflictBudget && h.first.valid())
      sited = true;
  EXPECT_TRUE(sited) << "budget hazard should carry the worst access site";
}

TEST(GpucheckAudit, DiagonalReportFailsANaiveExpectation) {
  AuditOutcome outcome =
      audit_workload(AuditTarget::kAcSharedDiagonal, wide_workload());
  Budget naive = target_budget(AuditTarget::kAcSharedNaive);
  apply_budget(outcome.report, naive);
  EXPECT_GE(outcome.report.count(HazardKind::kBankConflictBudget), 1u);
}

TEST(GpucheckAudit, ShippedBudgetsMatchTheStoreSchemeContracts) {
  EXPECT_EQ(target_budget(AuditTarget::kAcSharedDiagonal).max_bank_degree, 1u);
  EXPECT_FALSE(target_budget(AuditTarget::kAcSharedDiagonal).expect_bank_conflicts);
  EXPECT_TRUE(target_budget(AuditTarget::kAcSharedNaive).expect_bank_conflicts);
  EXPECT_EQ(target_budget(AuditTarget::kAcSharedNaive).max_bank_degree, 0u);
  EXPECT_TRUE(target_budget(AuditTarget::kAcDbDiagonal).require_coalesced_staging);
}

TEST(GpucheckAudit, EmptyTextAuditsCleanEverywhere) {
  Workload w;
  w.name = "gpucheck-empty";
  w.patterns = {"needle"};
  const CompiledWorkload cw(std::move(w));
  for (const AuditTarget t : all_audit_targets()) {
    const AuditOutcome outcome = audit_workload(t, cw);
    EXPECT_TRUE(outcome.report.clean()) << to_string(t);
    EXPECT_TRUE(outcome.matches_ok) << to_string(t);
    EXPECT_EQ(outcome.match_count, 0u) << to_string(t);
  }
}

TEST(GpucheckAudit, ConformanceSweepAggregatesPerTarget) {
  const std::vector<AuditTarget> targets = {AuditTarget::kAcGlobal,
                                            AuditTarget::kPacket};
  const std::vector<SweepTargetResult> results =
      audit_conformance(/*seed=*/5, /*iterations=*/4, targets);
  ASSERT_EQ(results.size(), targets.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].target, targets[i]);
    EXPECT_EQ(results[i].workloads, 4u);
    EXPECT_EQ(results[i].mismatches, 0u);
    EXPECT_TRUE(results[i].report.clean()) << to_string(results[i].target);
  }
}

TEST(GpucheckAudit, SweepDefaultsToAllTargets) {
  const std::vector<SweepTargetResult> results =
      audit_conformance(/*seed=*/7, /*iterations=*/1);
  EXPECT_EQ(results.size(), all_audit_targets().size());
}

// telemetry_series() is the single source of truth for the report's metric
// projection: the registry snapshot, the JSON report's "telemetry" object,
// and the raw report fields must all agree.
TEST(GpucheckAudit, TelemetryProjectionAgreesEverywhere) {
  const AuditOutcome outcome =
      audit_workload(AuditTarget::kAcSharedDiagonal, wide_workload());
  const auto series = telemetry_series(outcome.report);
  ASSERT_FALSE(series.empty());

  const auto at = [&series](const std::string& name) {
    for (const auto& [n, v] : series)
      if (n == name) return v;
    ADD_FAILURE() << "series " << name << " missing";
    return 0.0;
  };
  EXPECT_EQ(at("gpucheck.bank.max_degree"),
            static_cast<double>(outcome.report.bank.max_degree));
  EXPECT_EQ(at("gpucheck.hazards.total"),
            static_cast<double>(outcome.report.total_hazards()));

  telemetry::MetricsRegistry registry;
  publish(outcome.report, registry);
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  for (const auto& [name, value] : series)
    EXPECT_EQ(snap.value(name), value) << name;

  std::ostringstream json;
  outcome.report.write_json(json);
  const std::optional<telemetry::JsonValue> doc =
      telemetry::parse_json(json.str());
  ASSERT_TRUE(doc.has_value()) << "audit JSON must parse";
  const telemetry::JsonValue* embedded = doc->find("telemetry");
  ASSERT_NE(embedded, nullptr);
  for (const auto& [name, value] : series)
    EXPECT_EQ(embedded->number_at(name), value) << name;
}

}  // namespace
}  // namespace acgpu::gpucheck
