// Tracer span nesting/ordering and Chrome-trace JSON round trips: the
// emitted file must parse (telemetry/json.h), and every track's slices must
// be monotone and either disjoint or properly nested — Perfetto renders
// anything else as garbage.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>

#include "pipeline/engine.h"
#include "pipeline/telemetry_export.h"
#include "telemetry/json.h"
#include "telemetry/trace.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::telemetry {
namespace {

TEST(Tracer, RecordsNestingAsParentLinks) {
  Tracer tracer;
  {
    ACGPU_TRACE_SPAN(&tracer, "outer");
    {
      ACGPU_TRACE_SPAN(&tracer, "inner");
    }
    {
      Span s(&tracer, "sibling");
      s.annotate("key", "value");
    }
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: inner, sibling, outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[2].name, "outer");
  const TraceEvent& outer = events[2];
  EXPECT_EQ(events[0].parent, outer.id);
  EXPECT_EQ(events[1].parent, outer.id);
  EXPECT_EQ(outer.parent, 0u);
  // The parent span encloses its children on the timeline.
  for (int i : {0, 1}) {
    EXPECT_GE(events[i].start_ns, outer.start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns,
              outer.start_ns + outer.dur_ns);
  }
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "key");
  EXPECT_EQ(events[1].args[0].second, "value");
}

TEST(Tracer, NullTracerSpansAreNoOps) {
  Tracer* off = nullptr;
  ACGPU_TRACE_SPAN(off, "ignored");
  Span s(off, "also ignored");
  s.annotate("k", "v");  // must not crash
}

TEST(Tracer, ThreadsGetTheirOwnTracks) {
  Tracer tracer;
  {
    ACGPU_TRACE_SPAN(&tracer, "main");
    std::thread worker([&tracer] { ACGPU_TRACE_SPAN(&tracer, "worker"); });
    worker.join();
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].track, events[1].track);
  // A span opened on another thread is not a child of this thread's span.
  for (const TraceEvent& e : events) EXPECT_EQ(e.parent, 0u);
}

TEST(Tracer, OpenSpansAreExcludedFromEvents) {
  Tracer tracer;
  const std::uint64_t id = tracer.begin_span("open");
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.end_span(id);
  EXPECT_EQ(tracer.event_count(), 1u);
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON round trips.
// ---------------------------------------------------------------------------

struct ParsedSlice {
  double ts = 0, dur = 0;
};

/// Parses trace JSON and groups the ph:"X" slices per (pid, tid) in file
/// order; asserts the envelope shape along the way.
std::map<std::pair<double, double>, std::vector<ParsedSlice>> slices_by_track(
    const std::string& text) {
  const std::optional<JsonValue> doc = parse_json(text);
  EXPECT_TRUE(doc.has_value()) << "trace JSON must parse";
  std::map<std::pair<double, double>, std::vector<ParsedSlice>> tracks;
  if (!doc.has_value()) return tracks;
  const JsonValue* events = doc->find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  for (const JsonValue& e : events->array()) {
    const JsonValue* ph = e.find("ph");
    EXPECT_TRUE(ph != nullptr && ph->is_string());
    if (ph == nullptr || !ph->is_string() || ph->string() != "X") continue;
    ParsedSlice s;
    s.ts = e.number_at("ts").value();
    s.dur = e.number_at("dur").value();
    tracks[{e.number_at("pid").value(), e.number_at("tid").value()}].push_back(s);
  }
  return tracks;
}

/// Every track: starts monotone; consecutive slices disjoint or nested.
void expect_tracks_well_formed(
    const std::map<std::pair<double, double>, std::vector<ParsedSlice>>& tracks) {
  const double eps = 1e-3;  // written at ns precision, in us units
  for (const auto& [key, slices] : tracks) {
    for (std::size_t i = 1; i < slices.size(); ++i) {
      const ParsedSlice& prev = slices[i - 1];
      const ParsedSlice& cur = slices[i];
      EXPECT_GE(cur.ts + eps, prev.ts)
          << "track (" << key.first << "," << key.second << ") slice " << i;
      const bool disjoint = cur.ts + eps >= prev.ts + prev.dur;
      const bool nested = cur.ts + cur.dur <= prev.ts + prev.dur + eps;
      EXPECT_TRUE(disjoint || nested)
          << "track (" << key.first << "," << key.second << ") slice " << i
          << " overlaps its predecessor without nesting";
    }
  }
}

/// Thread/process names declared via ph:"M" metadata events.
std::vector<std::string> metadata_names(const std::string& text,
                                        const std::string& which) {
  std::vector<std::string> names;
  const std::optional<JsonValue> doc = parse_json(text);
  if (!doc.has_value()) return names;
  for (const JsonValue& e : doc->find("traceEvents")->array()) {
    const JsonValue* ph = e.find("ph");
    const JsonValue* name = e.find("name");
    if (ph == nullptr || !ph->is_string() || ph->string() != "M") continue;
    if (name == nullptr || name->string() != which) continue;
    names.push_back(e.find("args")->find("name")->string());
  }
  return names;
}

TEST(ChromeTrace, HandBuiltSlicesRoundTrip) {
  ChromeTrace trace;
  const std::uint64_t pid = trace.process("test process");
  const std::uint64_t tid = trace.track(pid, "test track");
  trace.add_slice(pid, tid, "outer", 1000, 5000, {{"k", "v"}});
  trace.add_slice(pid, tid, "inner", 2000, 1000);
  trace.add_slice(pid, tid, "later", 7000, 500);
  trace.add_counter(pid, "depth", 1000, 1);
  trace.add_counter(pid, "depth", 6000, 0);

  std::ostringstream out;
  trace.write(out);
  const std::string text = out.str();

  const auto tracks = slices_by_track(text);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks.begin()->second.size(), 3u);
  expect_tracks_well_formed(tracks);

  const auto pnames = metadata_names(text, "process_name");
  ASSERT_EQ(pnames.size(), 1u);
  EXPECT_EQ(pnames[0], "test process");
  const auto tnames = metadata_names(text, "thread_name");
  ASSERT_EQ(tnames.size(), 1u);
  EXPECT_EQ(tnames[0], "test track");

  // Counter samples survive as ph:"C" events.
  const std::optional<JsonValue> doc = parse_json(text);
  int counters = 0;
  for (const JsonValue& e : doc->find("traceEvents")->array())
    if (e.find("ph")->string() == "C") ++counters;
  EXPECT_EQ(counters, 2);
}

TEST(ChromeTrace, TracerSpansExportNestedNotOverlapping) {
  Tracer tracer;
  {
    ACGPU_TRACE_SPAN(&tracer, "a");
    { ACGPU_TRACE_SPAN(&tracer, "b"); }
    { ACGPU_TRACE_SPAN(&tracer, "c"); }
  }
  ChromeTrace trace;
  trace.add_tracer(tracer);
  std::ostringstream out;
  trace.write(out);
  const auto tracks = slices_by_track(out.str());
  ASSERT_EQ(tracks.size(), 1u);  // one host thread -> one track
  EXPECT_EQ(tracks.begin()->second.size(), 3u);
  expect_tracks_well_formed(tracks);
}

// End-to-end: a real (small) multi-stream pipeline run exported through
// pipeline/telemetry_export.h must parse, carry >= 2 stream tracks plus the
// engine tracks, keep every track well-formed, and include the counter
// tracks.
TEST(ChromeTrace, PipelineExportHasStreamAndEngineTracks) {
  const std::string corpus = workload::make_corpus(300 * 1024, 11);
  workload::ExtractConfig ec;
  ec.count = 50;
  ec.min_length = 4;
  ec.max_length = 12;
  const ac::PatternSet patterns =
      workload::extract_patterns({corpus.data() + 256 * 1024, 44 * 1024}, ec);

  Tracer tracer;
  EngineOptions opt;
  opt.streams = 2;
  opt.batch_bytes = 64 * 1024;
  opt.mode = gpusim::SimMode::Timed;
  opt.telemetry.tracer = &tracer;
  Result<Device> device = Device::create({});
  ASSERT_TRUE(device.is_ok()) << device.status().to_string();
  Result<Engine> engine = Engine::create(device.value(), patterns, opt);
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
  Result<ScanResult> scan =
      engine.value().scan({corpus.data(), 256 * 1024});
  ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();

  std::ostringstream out;
  pipeline::write_chrome_trace(scan.value(), &tracer, out);
  const std::string text = out.str();

  const auto tnames = metadata_names(text, "thread_name");
  int stream_tracks = 0;
  bool copy = false, compute = false;
  for (const std::string& n : tnames) {
    if (n.rfind("stream ", 0) == 0) ++stream_tracks;
    if (n == "copy engine") copy = true;
    if (n == "compute engine") compute = true;
  }
  EXPECT_GE(stream_tracks, 2);
  EXPECT_TRUE(copy);
  EXPECT_TRUE(compute);
  // Two processes: host spans + simulated device.
  EXPECT_EQ(metadata_names(text, "process_name").size(), 2u);

  expect_tracks_well_formed(slices_by_track(text));

  const std::optional<JsonValue> doc = parse_json(text);
  ASSERT_TRUE(doc.has_value());
  bool queue_counter = false, busy_counter = false;
  for (const JsonValue& e : doc->find("traceEvents")->array()) {
    if (e.find("ph")->string() != "C") continue;
    const std::string& name = e.find("name")->string();
    queue_counter |= name == "pipeline.queue_depth";
    busy_counter |= name == "device.engines_busy";
  }
  EXPECT_TRUE(queue_counter);
  EXPECT_TRUE(busy_counter);
}

}  // namespace
}  // namespace acgpu::telemetry
