// True-positive coverage for the hazard recorder: every analyzer must fire —
// with actionable thread/address context — on a deliberately-broken kernel,
// and stay quiet on the corrected twin.
#include "gpucheck/recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "gpucheck/audit.h"
#include "gpusim/launcher.h"

namespace acgpu::gpucheck {
namespace {

using gpusim::DevAddr;
using gpusim::DeviceMemory;
using gpusim::GpuConfig;
using gpusim::LaunchDims;
using gpusim::LaunchOptions;
using gpusim::Warp;
using gpusim::WarpTask;

GpuConfig small_config() {
  GpuConfig cfg = GpuConfig::gtx285();
  cfg.num_sms = 2;
  return cfg;
}

/// Launches `kernel` under a fresh Recorder and returns its report.
template <typename Kernel>
AuditReport record(const LaunchDims& dims, DeviceMemory& mem, Kernel&& kernel,
                   const gpusim::Texture2D* tex = nullptr) {
  Recorder recorder;
  LaunchOptions options;
  options.mode = gpusim::SimMode::Functional;
  options.observer = &recorder;
  gpusim::launch(small_config(), mem, tex, dims, kernel, options);
  return recorder.take_report();
}

// --- shared-memory races ----------------------------------------------------

TEST(GpucheckRecorder, SameInstructionConflictingStoresAreARace) {
  DeviceMemory mem(4096);
  const AuditReport report =
      record(LaunchDims{1, 32, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_all();
        // Lanes 0 and 1 both store shared word 0: two threads, same bytes,
        // no barrier in between.
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          w.addr[l] = l < 2 ? 0 : l * 4;
          w.value[l] = l;
        }
        co_await w.shared_store_u32();
      });
  ASSERT_EQ(report.count(HazardKind::kSharedRace), 1u);
  const Hazard& h = report.hazards.at(0);
  EXPECT_EQ(h.kind, HazardKind::kSharedRace);
  EXPECT_EQ(h.first.thread, 0);
  EXPECT_EQ(h.second.thread, 1);
  EXPECT_TRUE(h.second.is_store);
  EXPECT_NE(h.message.find("thread 0"), std::string::npos);
  EXPECT_NE(h.message.find("thread 1"), std::string::npos);
}

TEST(GpucheckRecorder, MissingBarrierMakesAStoreLoadRace) {
  DeviceMemory mem(4096);
  const DevAddr out = mem.alloc(256);
  // Warp 0 stages a shared word; warp 1 reads it back with NO intervening
  // __syncthreads — the classic staging bug the diagonal kernels must avoid.
  const AuditReport report =
      record(LaunchDims{1, 64, 256}, mem, [=](Warp& w) -> WarpTask {
        if (w.warp_in_block == 0) {
          w.mask_none();
          w.mask[0] = true;
          w.addr[0] = 0;
          w.value[0] = 7;
          co_await w.shared_store_u32();
        } else {
          w.mask_none();
          w.mask[0] = true;
          w.addr[0] = 0;
          co_await w.shared_load_u32();
          w.addr[0] = out;
          co_await w.global_store_u32();
        }
        w.mask_all();
        co_await w.barrier();
      });
  ASSERT_GE(report.count(HazardKind::kSharedRace), 1u);
  bool found = false;
  for (const Hazard& h : report.hazards) {
    if (h.kind != HazardKind::kSharedRace) continue;
    // Warp 0's store (thread 0) races warp 1's load (thread 32); either may
    // be observed first, but both sites must carry their thread identity.
    const auto lo = std::min(h.first.thread, h.second.thread);
    const auto hi = std::max(h.first.thread, h.second.thread);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 32);
    EXPECT_EQ(h.first.epoch, h.second.epoch);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GpucheckRecorder, BarrierSeparatedStagingIsClean) {
  DeviceMemory mem(4096);
  const DevAddr out = mem.alloc(256);
  const AuditReport report =
      record(LaunchDims{1, 64, 256}, mem, [=](Warp& w) -> WarpTask {
        if (w.warp_in_block == 0) {
          w.mask_none();
          w.mask[0] = true;
          w.addr[0] = 0;
          w.value[0] = 7;
          co_await w.shared_store_u32();
        }
        w.mask_all();
        co_await w.barrier();
        if (w.warp_in_block == 1) {
          w.mask_none();
          w.mask[0] = true;
          w.addr[0] = 0;
          co_await w.shared_load_u32();
          w.addr[0] = out;
          co_await w.global_store_u32();
        }
      });
  EXPECT_TRUE(report.clean()) << "unexpected hazards in the corrected kernel";
  EXPECT_EQ(mem.load_u32(out), 7u);
}

TEST(GpucheckRecorder, WriteAfterReadInSameEpochIsARace) {
  DeviceMemory mem(4096);
  const AuditReport report =
      record(LaunchDims{1, 64, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_none();
        w.mask[0] = true;
        w.addr[0] = 0;
        if (w.warp_in_block == 0) {
          co_await w.shared_load_u32();
        } else {
          w.value[0] = 9;
          co_await w.shared_store_u32();
        }
        w.mask_all();
        co_await w.barrier();
      });
  // Thread 0 reads while thread 32 writes the same word in epoch 0 (the
  // read also trips the uninitialized-shared analyzer — both are real).
  EXPECT_GE(report.count(HazardKind::kSharedRace) +
                report.count(HazardKind::kUninitSharedRead),
            1u);
}

// --- barrier divergence -----------------------------------------------------

TEST(GpucheckRecorder, WarpSkippingABarrierIsReportedAndReleased) {
  DeviceMemory mem(4096);
  const AuditReport report =
      record(LaunchDims{1, 64, 0}, mem, [](Warp& w) -> WarpTask {
        if (w.warp_in_block == 0) {
          w.mask_all();
          co_await w.barrier();  // warp 1 never arrives
        }
        co_await w.compute(1);
      });
  ASSERT_GE(report.count(HazardKind::kBarrierDivergence), 1u);
  const Hazard& h = report.hazards.at(0);
  EXPECT_EQ(h.kind, HazardKind::kBarrierDivergence);
  EXPECT_NE(h.message.find("warp 1"), std::string::npos);
  EXPECT_NE(h.message.find("without reaching"), std::string::npos);
}

TEST(GpucheckRecorder, UnequalBarrierCountsAreReportedAtBlockEnd) {
  DeviceMemory mem(4096);
  // Both warps meet at the first barrier; warp 0 then computes for a long
  // time before its second barrier, so warp 1 has already exited when warp 0
  // arrives — only the retire-time arrival-count cross-check can see it.
  const AuditReport report =
      record(LaunchDims{1, 64, 0}, mem, [](Warp& w) -> WarpTask {
        w.mask_all();
        co_await w.barrier();
        if (w.warp_in_block == 0) {
          co_await w.compute(500);
          co_await w.barrier();
        }
      });
  ASSERT_GE(report.count(HazardKind::kBarrierDivergence), 1u);
  bool found = false;
  for (const Hazard& h : report.hazards)
    if (h.message.find("unequal barrier counts") != std::string::npos)
      found = true;
  EXPECT_TRUE(found) << "expected the arrival-count cross-check to fire";
}

// --- out-of-bounds ----------------------------------------------------------

TEST(GpucheckRecorder, SharedOffByOneOverlapIsCaughtAndSuppressed) {
  DeviceMemory mem(4096);
  // A 256-byte staged region; lane 31's 4-byte store starts at byte 254 —
  // the off-by-one overlap bug (two bytes land past the region).
  const AuditReport report =
      record(LaunchDims{1, 32, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          w.addr[l] = l < 31 ? l * 8 : 254;
          w.value[l] = l;
        }
        co_await w.shared_store_u32();
        co_await w.compute(1);
      });
  ASSERT_EQ(report.count(HazardKind::kSharedOutOfBounds), 1u);
  const Hazard& h = report.hazards.at(0);
  EXPECT_EQ(h.first.thread, 31);
  EXPECT_EQ(h.first.addr, 254u);
  EXPECT_NE(h.message.find("256-byte"), std::string::npos);
}

TEST(GpucheckRecorder, GlobalOutOfBoundsLoadReadsZeroAndContinues) {
  DeviceMemory mem(4096);
  const DevAddr buf = mem.alloc(128);
  const DevAddr out = mem.alloc(128);
  mem.store_u32(buf, 41);
  const gpusim::DevAddr oob = mem.allocated() + 64;  // past every allocation
  const AuditReport report =
      record(LaunchDims{1, 32, 0}, mem, [=](Warp& w) -> WarpTask {
        w.mask_none();
        w.mask[0] = w.mask[1] = true;
        w.addr[0] = buf;
        w.addr[1] = oob;
        co_await w.global_load_u32();
        const std::uint32_t v0 = w.value[0], v1 = w.value[1];
        w.mask_none();
        w.mask[0] = w.mask[1] = true;
        w.addr[0] = out;
        w.addr[1] = out + 4;
        w.value[0] = v0 + 1;
        w.value[1] = v1 + 1;
        co_await w.global_store_u32();
      });
  ASSERT_EQ(report.count(HazardKind::kGlobalOutOfBounds), 1u);
  EXPECT_EQ(report.hazards.at(0).first.thread, 1);
  EXPECT_EQ(mem.load_u32(out), 42u);  // lane 0 unaffected
  EXPECT_EQ(mem.load_u32(out + 4), 1u);  // suppressed load produced 0
}

TEST(GpucheckRecorder, TextureFetchOutsideBindingIsCaught) {
  DeviceMemory mem(1 << 16);
  const DevAddr base = mem.alloc(64 * 4);
  const gpusim::Texture2D tex(&mem, base, 16, 4, 16);
  const AuditReport report = record(
      LaunchDims{1, 32, 0}, mem,
      [](Warp& w) -> WarpTask {
        w.mask_none();
        w.mask[0] = true;
        w.tex_x[0] = 16;  // == width: one past the last column
        w.tex_y[0] = 0;
        co_await w.tex_fetch();
      },
      &tex);
  ASSERT_EQ(report.count(HazardKind::kTextureOutOfBounds), 1u);
  EXPECT_NE(report.hazards.at(0).message.find("16x4"), std::string::npos);
}

// --- read-before-write ------------------------------------------------------

TEST(GpucheckRecorder, UninitializedSharedReadIsReported) {
  DeviceMemory mem(4096);
  const AuditReport report =
      record(LaunchDims{1, 32, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_none();
        w.mask[0] = true;
        w.addr[0] = 128;  // nothing ever stored there
        co_await w.shared_load_u32();
        co_await w.compute(1);
      });
  ASSERT_EQ(report.count(HazardKind::kUninitSharedRead), 1u);
  const Hazard& h = report.hazards.at(0);
  EXPECT_EQ(h.first.thread, 0);
  EXPECT_NE(h.message.find("never stored"), std::string::npos);
}

TEST(GpucheckRecorder, StagedThenReadSharedIsNotUninitialized) {
  DeviceMemory mem(4096);
  const AuditReport report =
      record(LaunchDims{1, 32, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          w.addr[l] = l * 4;
          w.value[l] = l;
        }
        co_await w.shared_store_u32();
        w.mask_all();
        co_await w.barrier();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = l * 4;
        co_await w.shared_load_u32();
      });
  EXPECT_EQ(report.count(HazardKind::kUninitSharedRead), 0u);
  EXPECT_TRUE(report.clean());
}

// --- global write races -----------------------------------------------------

TEST(GpucheckRecorder, SameAddressStoresFromTwoThreadsRace) {
  DeviceMemory mem(4096);
  const DevAddr out = mem.alloc(128);
  const AuditReport report =
      record(LaunchDims{1, 32, 0}, mem, [=](Warp& w) -> WarpTask {
        w.mask_none();
        w.mask[0] = w.mask[5] = true;
        w.addr[0] = out;
        w.addr[5] = out;  // same word, different thread, no ordering
        w.value[0] = 1;
        w.value[5] = 2;
        co_await w.global_store_u32();
      });
  ASSERT_EQ(report.count(HazardKind::kGlobalWriteRace), 1u);
  const Hazard& h = report.hazards.at(0);
  EXPECT_EQ(h.first.thread, 0);
  EXPECT_EQ(h.second.thread, 5);
}

TEST(GpucheckRecorder, PerThreadOutputSlotsDoNotRace) {
  DeviceMemory mem(4096);
  const DevAddr out = mem.alloc(256);
  const AuditReport report =
      record(LaunchDims{2, 32, 0}, mem, [=](Warp& w) -> WarpTask {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          w.addr[l] = out + w.global_thread(l) * 4;
          w.value[l] = l;
        }
        co_await w.global_store_u32();
      });
  EXPECT_EQ(report.count(HazardKind::kGlobalWriteRace), 0u);
}

// --- coalescing lint --------------------------------------------------------

TEST(GpucheckRecorder, StridedStagingLoadTripsTheLintAndBudget) {
  DeviceMemory mem(1 << 20);
  const DevAddr src = mem.alloc(32 * 256);
  AuditReport report =
      record(LaunchDims{1, 32, 0}, mem, [=](Warp& w) -> WarpTask {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          w.addr[l] = src + l * 256;  // one 128 B segment per lane
        co_await w.global_load_u32();
      });
  EXPECT_EQ(report.coalescing.load_requests, 1u);
  EXPECT_EQ(report.coalescing.staging_requests, 1u);
  EXPECT_EQ(report.coalescing.staging_excess, 1u);
  ASSERT_TRUE(report.coalescing.staging_worst.valid());
  EXPECT_EQ(report.coalescing.staging_worst_actual, 32u);
  EXPECT_EQ(report.coalescing.staging_worst_ideal, 1u);

  Budget budget;
  budget.require_coalesced_staging = true;
  apply_budget(report, budget);
  ASSERT_EQ(report.count(HazardKind::kCoalescingExcess), 1u);
  const Hazard& h = report.hazards.at(0);
  EXPECT_EQ(h.kind, HazardKind::kCoalescingExcess);
  EXPECT_EQ(h.first.block, 0u);
  EXPECT_NE(h.message.find("32 vs 1"), std::string::npos);
}

TEST(GpucheckRecorder, UnavoidableSegmentStraddleIsNotExcess) {
  DeviceMemory mem(1 << 20);
  const DevAddr src = mem.alloc(4096);
  const AuditReport report =
      record(LaunchDims{1, 32, 0}, mem, [=](Warp& w) -> WarpTask {
        w.mask_all();
        // Contiguous 32-word window starting 100 bytes into a segment: two
        // transactions, but a contiguous packing can do no better.
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          w.addr[l] = src + 100 + l * 4;
        co_await w.global_load_u32();
      });
  EXPECT_EQ(report.coalescing.excess_requests, 0u);
  EXPECT_EQ(report.coalescing.staging_excess, 0u);
}

// --- bank-conflict budget ---------------------------------------------------

TEST(GpucheckRecorder, SameBankStridesBreakTheDegreeBudget) {
  DeviceMemory mem(4096);
  AuditReport report =
      record(LaunchDims{1, 16, 2048}, mem, [](Warp& w) -> WarpTask {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          w.addr[l] = l * 64;  // distinct words, all on bank 0
          w.value[l] = l;
        }
        co_await w.shared_store_u32();
        co_await w.compute(1);
      });
  EXPECT_EQ(report.bank.max_degree, 16u);
  EXPECT_EQ(report.bank.conflicted_accesses, 1u);

  Budget budget;
  budget.max_bank_degree = 1;
  apply_budget(report, budget);
  ASSERT_EQ(report.count(HazardKind::kBankConflictBudget), 1u);
  EXPECT_NE(report.hazards.at(0).message.find("degree 16"),
            std::string::npos);
}

TEST(GpucheckRecorder, BroadcastReadsStayWithinTheBudget) {
  DeviceMemory mem(4096);
  AuditReport report =
      record(LaunchDims{1, 32, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          w.addr[l] = l * 4;
          w.value[l] = 1;
        }
        co_await w.shared_store_u32();
        w.mask_all();
        co_await w.barrier();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) w.addr[l] = 0;
        co_await w.shared_load_u32();  // hardware broadcast: degree 1
      });
  EXPECT_LE(report.bank.max_degree, 1u);
  Budget budget;
  budget.max_bank_degree = 1;
  apply_budget(report, budget);
  EXPECT_EQ(report.count(HazardKind::kBankConflictBudget), 0u);
}

TEST(GpucheckRecorder, AbsentExpectedConflictsAreFlagged) {
  DeviceMemory mem(4096);
  AuditReport report =
      record(LaunchDims{1, 32, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_all();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          w.addr[l] = l * 4;  // conflict-free
          w.value[l] = l;
        }
        co_await w.shared_store_u32();
        co_await w.compute(1);
      });
  Budget budget;
  budget.expect_bank_conflicts = true;
  apply_budget(report, budget);
  ASSERT_EQ(report.count(HazardKind::kBankConflictBudget), 1u);
  EXPECT_NE(report.hazards.at(0).message.find("absent"), std::string::npos);
}

// --- report plumbing --------------------------------------------------------

TEST(GpucheckRecorder, ReportSerializesToJson) {
  DeviceMemory mem(4096);
  const AuditReport report =
      record(LaunchDims{1, 32, 256}, mem, [](Warp& w) -> WarpTask {
        w.mask_none();
        w.mask[0] = true;
        w.addr[0] = 300;  // past the 256-byte region
        w.value[0] = 1;
        co_await w.shared_store_u32();
      });
  std::ostringstream json;
  report.write_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(s.find("\"shared-oob\""), std::string::npos);
  EXPECT_NE(s.find("\"hazards\":["), std::string::npos);

  std::ostringstream text;
  report.write_text(text);
  EXPECT_NE(text.str().find("shared-oob"), std::string::npos);
}

TEST(GpucheckRecorder, HazardCapKeepsCountingOccurrences) {
  DeviceMemory mem(4096);
  Recorder recorder(RecorderOptions{.max_hazards = 2});
  LaunchOptions options;
  options.mode = gpusim::SimMode::Functional;
  options.observer = &recorder;
  // Four separate uninitialized loads: 4 occurrences, 2 exemplars kept.
  gpusim::launch(small_config(), mem, nullptr, LaunchDims{1, 32, 256},
                 [](Warp& w) -> WarpTask {
                   for (std::uint32_t i = 0; i < 4; ++i) {
                     w.mask_none();
                     w.mask[0] = true;
                     w.addr[0] = i * 8;
                     co_await w.shared_load_u8();
                   }
                 },
                 options);
  const AuditReport& report = recorder.report();
  EXPECT_EQ(report.count(HazardKind::kUninitSharedRead), 4u);
  EXPECT_EQ(report.hazards.size(), 2u);
  EXPECT_EQ(report.dropped_hazards, 2u);
}

}  // namespace
}  // namespace acgpu::gpucheck
