// Tests for the differential runner, the minimizer, and the conformance
// loop — including the acceptance gate that an intentionally-broken matcher
// is caught and shrunk to a minimal reproducer.
#include "oracle/differential.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "oracle/conformance.h"
#include "oracle/minimize.h"
#include "oracle/workload_gen.h"

namespace acgpu::oracle {
namespace {

/// Deliberately broken matcher: a serial scan that DROPS every match whose
/// end falls in the last two bytes of a 32-byte "chunk" — the classic
/// boundary/overlap bug class this harness exists to catch.
class BoundaryDropMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "broken-boundary";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    auto out = reference_matches(w);
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const ac::Match& m) { return m.end % 32 >= 30; }),
              out.end());
    return out;
  }
};

/// Broken differently: duplicates every match at an even end index — the
/// multiset (not set) comparison must flag it.
class DuplicatingMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "broken-duplicate";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    auto out = reference_matches(w);
    std::vector<ac::Match> doubled;
    for (const auto& m : out) {
      doubled.push_back(m);
      if (m.end % 2 == 0) doubled.push_back(m);
    }
    ac::normalize_matches(doubled);
    return doubled;
  }
};

/// Broken a third way: crashes outright. Matcher::try_run must convert the
/// throw into a structured failure instead of aborting the whole sweep.
class ThrowingMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "broken-throwing";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload&, std::uint64_t) const override {
    throw Error("simulated device fault");
  }
};

CompiledWorkload boundary_workload() {
  // One match ends at byte 31 (inside the dropped zone), one at byte 10.
  std::string text(64, 'x');
  text.replace(8, 3, "abc");   // ends at 10 — survives the broken matcher
  text.replace(29, 3, "abc");  // ends at 31 — dropped by the broken matcher
  return CompiledWorkload(Workload{"boundary-case", {"abc"}, text});
}

TEST(Differential, CleanMatchersProduceNoDivergence) {
  const CompiledWorkload w = boundary_workload();
  const auto owned = make_matchers({"serial", "stream", "parallel"});
  std::vector<const Matcher*> matchers;
  for (const auto& m : owned) matchers.push_back(m.get());
  const DifferentialReport report = run_differential(w, matchers, 9);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.matchers_run, 3u);
  EXPECT_EQ(report.reference_count, 2u);
}

TEST(Differential, BrokenMatcherIsCaughtWithFirstDivergenceContext) {
  const CompiledWorkload w = boundary_workload();
  const BoundaryDropMatcher broken;
  const DifferentialReport report = run_differential(w, {&broken}, 9);
  ASSERT_EQ(report.divergences.size(), 1u);
  const Divergence& d = report.divergences[0];
  EXPECT_EQ(d.matcher, "broken-boundary");
  EXPECT_EQ(d.reference_count, 2u);
  EXPECT_EQ(d.matcher_count, 1u);
  // The surviving (10, 0) record agrees; index 1 is the dropped match.
  EXPECT_EQ(d.index, 1u);
  ASSERT_TRUE(d.expected.has_value());
  EXPECT_EQ(d.expected->end, 31u);
  EXPECT_EQ(d.expected->pattern, 0);
  EXPECT_FALSE(d.got.has_value());
  EXPECT_EQ(d.byte_offset, 31u);
  // After consuming ...'c' at offset 31 the DFA sits in the "abc" match
  // state — a non-root state.
  EXPECT_NE(d.dfa_state, 0);
  const std::string rendered = describe(d);
  EXPECT_NE(rendered.find("broken-boundary"), std::string::npos);
  EXPECT_NE(rendered.find("end=31"), std::string::npos);
}

TEST(Differential, DuplicateEmissionsAreDivergences) {
  const CompiledWorkload w = boundary_workload();
  const DuplicatingMatcher broken;
  const DifferentialReport report = run_differential(w, {&broken}, 9);
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_EQ(report.divergences[0].matcher_count, 3u);
  EXPECT_EQ(report.divergences[0].reference_count, 2u);
}

TEST(Differential, ThrowingMatcherBecomesStructuredFailure) {
  const CompiledWorkload w = boundary_workload();
  const ThrowingMatcher broken;
  const auto serial = make_matcher("serial");
  const DifferentialReport report = run_differential(w, {serial.get(), &broken}, 9);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.divergences.empty());  // no output is not wrong output
  EXPECT_EQ(report.matchers_run, 2u);
  ASSERT_EQ(report.failures.size(), 1u);
  const MatcherFailure& f = report.failures[0];
  EXPECT_EQ(f.matcher, "broken-throwing");
  EXPECT_EQ(f.workload, "boundary-case");
  EXPECT_EQ(f.status.code(), StatusCode::kInternal);
  EXPECT_NE(f.status.message().find("simulated device fault"), std::string::npos);
  const std::string rendered = describe(f);
  EXPECT_NE(rendered.find("broken-throwing"), std::string::npos);
  EXPECT_NE(rendered.find("simulated device fault"), std::string::npos);
}

TEST(Conformance, MatcherFailuresCountTowardMaxFailures) {
  const ThrowingMatcher broken;
  ConformanceOptions options;
  options.seed = 3;
  options.iterations = 16;
  options.max_failures = 3;
  const ConformanceResult result = run_conformance(options, {&broken});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failures.size(), 3u);  // stopped at the cap, not 16
  for (const auto& f : result.failures) EXPECT_EQ(f.matcher, "broken-throwing");
}

TEST(Minimizer, ShrinksBrokenMatcherToMinimalReproducer) {
  // Start from a big noisy workload: long text, decoy patterns.
  std::string text(1200, 'y');
  text.replace(317, 3, "abc");
  text.replace(606, 3, "abc");  // ends at 608... not in drop zone
  text.replace(989, 3, "abc");  // ends at 991: 991 % 32 == 31 -> dropped
  const Workload noisy{"noisy", {"abc", "decoy", "unused"}, text};

  const BoundaryDropMatcher broken;
  const auto repro = minimize_divergence(noisy, broken, /*salt=*/4);
  ASSERT_TRUE(repro.has_value());
  // Everything irrelevant is gone: one pattern, and a text just long enough
  // to reach a drop-zone end offset (>= 31 bytes, far below the original).
  EXPECT_EQ(repro->workload.patterns.size(), 1u);
  EXPECT_LE(repro->workload.text.size(), 64u);
  EXPECT_GE(repro->workload.text.size(), 31u);
  EXPECT_EQ(repro->matcher, "broken-boundary");

  // The reproducer still diverges, end-to-end.
  const CompiledWorkload compiled(repro->workload);
  EXPECT_NE(broken.run(compiled, repro->salt), reference_matches(compiled));

  // And renders as a paste-ready regression test.
  const std::string test = to_cpp_test(*repro);
  EXPECT_NE(test.find("TEST(ConformanceRegression,"), std::string::npos);
  EXPECT_NE(test.find("broken-boundary"), std::string::npos);
  EXPECT_NE(test.find("reference_matches"), std::string::npos);
}

TEST(Minimizer, ReturnsNulloptWhenNothingDiverges) {
  const auto serial = make_matcher("serial");
  const Workload w{"fine", {"ab"}, "xxabxx"};
  EXPECT_FALSE(minimize_divergence(w, *serial, 1).has_value());
}

TEST(Minimizer, OctalEscapingRoundTripsBinaryBytes) {
  std::string text(40, 'z');
  text[33] = '\0';
  text.replace(29, 3, "abc");
  Reproducer r;
  r.workload = Workload{"bin", {std::string("\x00\xff", 2)}, text};
  r.matcher = "serial";
  r.salt = 1;
  const std::string test = to_cpp_test(r);
  // 0x00 -> \000, 0xff -> \377; no raw control bytes in the rendering.
  EXPECT_NE(test.find("\\000\\377"), std::string::npos);
  for (const char c : test) EXPECT_TRUE(c == '\n' || (c >= 0x20 && c < 0x7f));
}

TEST(Conformance, LoopCatchesInjectedBrokenMatcherAmongRealOnes) {
  const auto serial = make_matcher("serial");
  const auto stream = make_matcher("stream");
  const BoundaryDropMatcher broken;
  ConformanceOptions options;
  options.seed = 3;
  options.iterations = 16;  // one full family cycle x2
  options.minimize = true;
  options.max_failures = 3;
  const ConformanceResult result =
      run_conformance(options, {serial.get(), stream.get(), &broken});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.divergences.size(), result.reproducers.size());
  for (const auto& d : result.divergences) EXPECT_EQ(d.matcher, "broken-boundary");
  for (const auto& r : result.reproducers) {
    EXPECT_EQ(r.matcher, "broken-boundary");
    EXPECT_LE(r.workload.text.size(), 200u);
  }
}

TEST(Conformance, MiniSweepOverAllRegisteredMatchersIsClean) {
  ConformanceOptions options;
  options.seed = 1234;
  options.iterations = 8;  // one full family cycle
  const ConformanceResult result = run_conformance(options);
  std::string detail;
  if (!result.failures.empty()) detail = describe(result.failures.front());
  if (!result.divergences.empty()) detail = describe(result.divergences.front());
  EXPECT_TRUE(result.ok()) << detail;
  EXPECT_EQ(result.iterations, 8u);
  EXPECT_EQ(result.comparisons, 8 * registered_matcher_names().size());
}

}  // namespace
}  // namespace acgpu::oracle
