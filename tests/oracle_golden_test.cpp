// Golden-vector conformance tests: a checked-in corpus of (patterns, text,
// expected matches) triples with hand-computed expectations, run against
// every registered matcher. The vectors target the paper's 257-column STT
// edge cases — byte 0x00 (whose transitions live in column 1, next to the
// column-0 match flag), byte 0xFF (column 256, the last one), and states
// whose match flag must fire exactly once per end position.
#include <gtest/gtest.h>

#include "oracle/matcher.h"

namespace acgpu::oracle {
namespace {

struct GoldenVector {
  const char* tag;
  std::vector<std::string> patterns;
  std::string text;
  std::vector<ac::Match> expected;  ///< normalized (end, pattern-id) multiset
};

std::vector<GoldenVector> golden_vectors() {
  using std::string;
  std::vector<GoldenVector> v;

  // The paper's running example (Fig. 1): "ushers" emits he+she at 3, hers
  // at 5. Pattern ids follow insertion order.
  v.push_back({"paper-ushers",
               {"he", "she", "his", "hers"},
               "ushers",
               {{3, 0}, {3, 1}, {5, 3}}});

  // Byte 0x00 inside a pattern: column_for_byte(0x00) == 1 must not be
  // confused with the match column 0.
  v.push_back({"nul-inside-pattern",
               {string("a\0b", 3)},
               string("xa\0ba\0b", 7),
               {{3, 0}, {6, 0}}});

  // A 1-byte NUL pattern matching at text start and interior.
  v.push_back({"nul-single-byte",
               {string("\0", 1)},
               string("\0a\0", 3),
               {{0, 0}, {2, 0}}});

  // Byte 0xFF: the STT's last column (256); overlapping self-matches.
  v.push_back({"ff-overlapping",
               {string("\xff\xff", 2)},
               string(4, '\xff'),
               {{1, 0}, {2, 0}, {3, 0}}});

  // 0xFF -> 0x00 adjacency: both extremes on one transition path.
  v.push_back({"ff-nul-pair",
               {string("\xff\0", 2)},
               string("a\xff\0b\xff\0", 6),
               {{2, 0}, {5, 0}}});

  // Suffix-of-suffix output chain: reaching "aaa" must emit a, aa, aaa.
  v.push_back({"suffix-chain",
               {"a", "aa", "aaa"},
               "aaaa",
               {{0, 0}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {2, 2},
                {3, 0}, {3, 1}, {3, 2}}});

  // Interleaved overlapping matches via failure transitions.
  v.push_back({"interleaved-ab",
               {"ab", "ba"},
               "ababa",
               {{1, 0}, {2, 1}, {3, 0}, {4, 1}}});

  // No matches at all: the match flag must never misfire.
  v.push_back({"no-matches", {"zzz"}, "the quick brown fox", {}});

  return v;
}

TEST(OracleGolden, ReferenceMatchesHandComputedVectors) {
  for (const auto& g : golden_vectors()) {
    const CompiledWorkload w(Workload{g.tag, g.patterns, g.text});
    EXPECT_EQ(reference_matches(w), g.expected) << g.tag;
  }
}

TEST(OracleGolden, EveryRegisteredMatcherReproducesEveryVector) {
  const auto matchers = make_all_matchers();
  for (const auto& g : golden_vectors()) {
    const CompiledWorkload w(Workload{g.tag, g.patterns, g.text});
    for (const auto& matcher : matchers)
      EXPECT_EQ(matcher->run(w, /*salt=*/17), g.expected)
          << g.tag << " via " << matcher->name();
  }
}

TEST(OracleGolden, VectorsAreStableAcrossSalts) {
  const auto matchers = make_all_matchers();
  for (const auto& g : golden_vectors()) {
    const CompiledWorkload w(Workload{g.tag, g.patterns, g.text});
    for (const std::uint64_t salt : {0ull, 1ull, 0xdeadbeefull})
      for (const auto& matcher : matchers)
        EXPECT_EQ(matcher->run(w, salt), g.expected)
            << g.tag << " via " << matcher->name() << " salt " << salt;
  }
}

}  // namespace
}  // namespace acgpu::oracle
