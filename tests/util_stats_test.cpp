#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace acgpu {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance with n-1: sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100 - 50;
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(Samples, SingleSamplePercentiles) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
  EXPECT_THROW(s.percentile(50), Error);
}

TEST(Samples, PercentileRangeValidated) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), Error);
  EXPECT_THROW(s.percentile(101), Error);
}

TEST(Samples, MinMaxMean) {
  Samples s;
  for (double x : {5.0, -2.0, 9.0, 0.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

}  // namespace
}  // namespace acgpu
