// Session boundary continuation: spanning matches reported exactly once
// with global offsets, carried-state correctness in both boundary modes,
// and the per-session quotas.
#include "serve/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ac/pattern_set.h"
#include "ac/pfac.h"
#include "ac/serial_matcher.h"
#include "util/rng.h"

namespace acgpu::serve {
namespace {

struct Compiled {
  ac::PatternSet patterns;
  ac::Dfa dfa;
  ac::PfacAutomaton pfac;

  explicit Compiled(const std::vector<std::string>& pats)
      : patterns(pats), dfa(ac::build_dfa(patterns, 8)), pfac(patterns) {}
};

/// What the service's bulk scanner contributes for one chunk: every match
/// wholly contained in it (fresh DFA from the chunk's first byte), rebased
/// to global offsets. begin_chunk owns everything that spans in.
std::vector<ac::Match> bulk_matches(const ac::Dfa& dfa, std::string_view chunk,
                                    std::uint64_t base) {
  std::vector<ac::Match> out = ac::find_all(dfa, chunk);
  for (ac::Match& m : out) m.end += base;
  return out;
}

/// Streams `text` through a session in the given chunk sizes and returns
/// the union of continuation (spanning) and bulk (contained) matches — the
/// exact decomposition the service performs.
std::vector<ac::Match> stream_all(const Compiled& c, BoundaryMode mode,
                                  std::string_view text,
                                  const std::vector<std::size_t>& cuts) {
  Session session(1, c.dfa, &c.pfac, mode, SessionLimits{});
  std::size_t pos = 0;
  for (std::size_t len : cuts) {
    len = std::min(len, text.size() - pos);
    const std::string_view chunk = text.substr(pos, len);
    const std::uint64_t base = session.bytes_fed();
    session.begin_chunk(chunk);
    for (ac::Match m : bulk_matches(c.dfa, chunk, base)) session.deliver(m);
    pos += len;
    if (pos == text.size()) break;
  }
  EXPECT_EQ(pos, text.size()) << "cuts did not cover the text";
  auto out = session.take_matches();
  ac::normalize_matches(out);
  return out;
}

std::vector<ac::Match> reference(const Compiled& c, std::string_view text) {
  auto out = ac::find_all(c.dfa, text);
  ac::normalize_matches(out);
  return out;
}

std::vector<std::size_t> uniform_cuts(std::size_t n, std::size_t chunk) {
  return std::vector<std::size_t>((n + chunk - 1) / std::max<std::size_t>(chunk, 1),
                                  chunk);
}

TEST(ServeSession, PaperExampleEveryUniformChunking) {
  const Compiled c({"he", "she", "his", "hers"});
  const std::string text = "ushers and sheep hide his herbs ushers";
  const auto expected = reference(c, text);
  ASSERT_FALSE(expected.empty());
  for (BoundaryMode mode : {BoundaryMode::kDfaState, BoundaryMode::kPfacTail}) {
    for (std::size_t chunk = 1; chunk <= text.size() + 1; ++chunk)
      EXPECT_EQ(stream_all(c, mode, text, uniform_cuts(text.size(), chunk)),
                expected)
          << to_string(mode) << " chunk=" << chunk;
  }
}

TEST(ServeSession, OneByteFeedsSpanManyBoundaries) {
  // Every match longer than one byte spans a boundary; the continuation
  // must find all of them and the bulk scanner only the 1-byte ones.
  const Compiled c({"aaa", "ab", "aabab"});
  const std::string text = "aaababaababaaabab";
  const auto expected = reference(c, text);
  for (BoundaryMode mode : {BoundaryMode::kDfaState, BoundaryMode::kPfacTail})
    EXPECT_EQ(stream_all(c, mode, text, uniform_cuts(text.size(), 1)), expected)
        << to_string(mode);
}

TEST(ServeSession, MatchEndingExactlyOnBoundaryIsBulkOnly) {
  // "abcd" occupies bytes 0..3 and the cut is at 4: the match is contained
  // in chunk 0 (bulk's job); the continuation must not duplicate it.
  const Compiled c({"abcd"});
  const std::string text = "abcdxxxx";
  Session session(1, c.dfa, nullptr, BoundaryMode::kDfaState, SessionLimits{});
  session.begin_chunk(text.substr(0, 4));
  EXPECT_EQ(session.stats().spanning_matches, 0u);
  session.begin_chunk(text.substr(4));
  EXPECT_EQ(session.stats().spanning_matches, 0u);
  for (BoundaryMode mode : {BoundaryMode::kDfaState, BoundaryMode::kPfacTail})
    EXPECT_EQ(stream_all(c, mode, text, {4, 4}), reference(c, text))
        << to_string(mode);
}

TEST(ServeSession, MatchStartingExactlyOnBoundaryIsBulkOnly) {
  // "abcd" starts at the cut (byte 4): contained in chunk 1.
  const Compiled c({"abcd"});
  const std::string text = "xxxxabcd";
  Session session(1, c.dfa, nullptr, BoundaryMode::kDfaState, SessionLimits{});
  session.begin_chunk(text.substr(0, 4));
  session.begin_chunk(text.substr(4));
  EXPECT_EQ(session.stats().spanning_matches, 0u);
  for (BoundaryMode mode : {BoundaryMode::kDfaState, BoundaryMode::kPfacTail})
    EXPECT_EQ(stream_all(c, mode, text, {4, 4}), reference(c, text))
        << to_string(mode);
}

TEST(ServeSession, StraddlingMatchReportedOnceByContinuation) {
  const Compiled c({"abcd"});
  const std::string text = "xxabcdxx";
  for (std::size_t cut = 3; cut <= 5; ++cut) {  // cuts inside the match
    Session session(1, c.dfa, nullptr, BoundaryMode::kDfaState, SessionLimits{});
    session.begin_chunk(std::string_view(text).substr(0, cut));
    session.begin_chunk(std::string_view(text).substr(cut));
    EXPECT_EQ(session.stats().spanning_matches, 1u) << "cut=" << cut;
    const auto matches = session.take_matches();
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].end, 5u);  // global offset of 'd'
  }
}

TEST(ServeSession, DfaStateMatchesSerialWalkAfterLongAndShortChunks) {
  const Compiled c({"hers", "she"});
  const std::string text = "zzzzzzzzzzhershershe";
  Rng rng(99);
  for (int trial = 0; trial < 16; ++trial) {
    Session session(1, c.dfa, nullptr, BoundaryMode::kDfaState, SessionLimits{});
    std::size_t pos = 0;
    std::int32_t expected_state = 0;
    while (pos < text.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + rng.next_below(9), text.size() - pos);
      session.begin_chunk(std::string_view(text).substr(pos, len));
      for (std::size_t i = pos; i < pos + len; ++i)
        expected_state =
            c.dfa.next(expected_state, static_cast<std::uint8_t>(text[i]));
      // The re-rooted state must equal the serially-walked state: it is the
      // longest pattern-prefix suffix either way.
      EXPECT_EQ(session.dfa_state(), expected_state) << "pos=" << pos + len;
      pos += len;
    }
  }
}

TEST(ServeSession, PfacTailHoldsLastMaxLenMinusOneBytes) {
  const Compiled c({"abcde"});  // X = 5 -> tail keeps 4 bytes
  Session session(1, c.dfa, &c.pfac, BoundaryMode::kPfacTail, SessionLimits{});
  session.begin_chunk("xy");
  EXPECT_EQ(session.tail(), "xy");
  session.begin_chunk("z");
  EXPECT_EQ(session.tail(), "xyz");
  session.begin_chunk("123456789");
  EXPECT_EQ(session.tail(), "6789");
  session.begin_chunk("");
  EXPECT_EQ(session.tail(), "6789");
}

TEST(ServeSession, EmptyChunksAreHarmlessEverywhere) {
  const Compiled c({"ab"});
  for (BoundaryMode mode : {BoundaryMode::kDfaState, BoundaryMode::kPfacTail}) {
    Session session(1, c.dfa, &c.pfac, mode, SessionLimits{});
    session.begin_chunk("");
    session.begin_chunk("a");
    session.begin_chunk("");
    session.begin_chunk("b");  // "ab" spans the a|b boundary
    session.begin_chunk("");
    EXPECT_EQ(session.stats().spanning_matches, 1u) << to_string(mode);
    EXPECT_EQ(session.stats().chunks_fed, 5u);
    EXPECT_EQ(session.bytes_fed(), 2u);
  }
}

TEST(ServeSession, ByteQuotaRejectsBeforeMutating) {
  const Compiled c({"ab"});
  SessionLimits limits;
  limits.max_bytes = 4;
  Session session(1, c.dfa, nullptr, BoundaryMode::kDfaState, limits);
  EXPECT_TRUE(session.admit_bytes(4).is_ok());
  session.begin_chunk("abcd");
  const Status over = session.admit_bytes(1);
  EXPECT_EQ(over.code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(session.bytes_fed(), 4u);  // rejected feed mutated nothing
}

TEST(ServeSession, MatchQuotaDropsAndMarksTruncated) {
  const Compiled c({"a"});
  SessionLimits limits;
  limits.max_matches = 2;
  Session session(1, c.dfa, nullptr, BoundaryMode::kDfaState, limits);
  EXPECT_TRUE(session.deliver({0, 0}));
  EXPECT_TRUE(session.deliver({1, 0}));
  EXPECT_FALSE(session.deliver({2, 0}));
  EXPECT_FALSE(session.deliver({3, 0}));
  EXPECT_EQ(session.stats().matches_delivered, 2u);
  EXPECT_EQ(session.stats().matches_dropped, 2u);
  EXPECT_TRUE(session.stats().truncated);
  EXPECT_EQ(session.take_matches().size(), 2u);
}

TEST(ServeSession, TakeMatchesDrainsBuffer) {
  const Compiled c({"a"});
  Session session(1, c.dfa, nullptr, BoundaryMode::kDfaState, SessionLimits{});
  session.deliver({0, 0});
  EXPECT_EQ(session.buffered(), 1u);
  EXPECT_EQ(session.take_matches().size(), 1u);
  EXPECT_EQ(session.buffered(), 0u);
  EXPECT_TRUE(session.take_matches().empty());
  EXPECT_EQ(session.stats().matches_delivered, 1u);  // stats survive the take
}

TEST(ServeSession, RandomizedChunkingsAgreeWithSerialReference) {
  const Compiled c({"he", "she", "his", "hers", "aaa"});
  Rng text_rng(4242);
  std::string text(997, '\0');
  for (char& ch : text)
    ch = "hersaix"[text_rng.next_below(7)];
  const auto expected = reference(c, text);
  ASSERT_FALSE(expected.empty());
  for (BoundaryMode mode : {BoundaryMode::kDfaState, BoundaryMode::kPfacTail}) {
    for (std::uint64_t salt = 0; salt < 24; ++salt) {
      Rng rng(derive_seed(salt, 5));
      std::vector<std::size_t> cuts;
      std::size_t covered = 0;
      while (covered < text.size()) {
        const std::size_t len = rng.next_below(40);  // includes empty chunks
        cuts.push_back(len);
        covered += len;
      }
      EXPECT_EQ(stream_all(c, mode, text, cuts), expected)
          << to_string(mode) << " salt=" << salt;
    }
  }
}

}  // namespace
}  // namespace acgpu::serve
