// Regenerates the paper's Figure 16 (see harness/figures.cpp for the
// definition and the paper's reported range).
#include "harness/report.h"

int main(int argc, char** argv) {
  return acgpu::harness::figure_main("fig16", argc, argv);
}
