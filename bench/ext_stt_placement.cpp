// Extension ablation: where should the STT live? The paper puts it in
// texture memory so the hot rows ride the texture caches; this bench runs
// the shared-memory kernel with the STT fetched through the texture path vs
// plain (uncached) global memory, validating that design choice.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Extension: STT in texture memory vs plain global memory.");
  args.add_flag("size", "input size", "16MB");
  if (!args.parse(argc, argv)) return 0;

  const gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  const auto size = static_cast<std::size_t>(args.get_bytes("size"));
  const std::string corpus = workload::make_corpus(size + 4 * kMiB, 777);
  const std::string_view input(corpus.data(), size);
  const std::string_view pool(corpus.data() + size, 4 * kMiB);

  Table table;
  table.set_header({"patterns", "texture Gbps", "global Gbps", "texture/global",
                    "tex hit", "gmem txn ratio"});

  for (std::uint32_t count : {100u, 1000u, 5000u, 20000u}) {
    workload::ExtractConfig ec;
    ec.count = count;
    ec.word_aligned = true;
    const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(pool, ec), 8);
    gpusim::DeviceMemory mem(1ull << 30);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const auto addr = kernels::upload_text(mem, input);

    auto run = [&](kernels::SttPlacement placement) {
      kernels::AcLaunchSpec spec;
      spec.approach = kernels::Approach::kShared;
      spec.chunk_bytes = 64;
      spec.threads_per_block = 192;
      spec.stt_placement = placement;
      const std::size_t mark = mem.mark();
      const auto out = kernels::run_ac_kernel(cfg, mem, ddfa, addr, input.size(), spec);
      mem.release(mark);
      return out;
    };

    const auto tex = run(kernels::SttPlacement::kTexture);
    const auto glob = run(kernels::SttPlacement::kGlobal);
    const double tex_gbps = to_gbps(input.size(), tex.sim.seconds);
    const double glob_gbps = to_gbps(input.size(), glob.sim.seconds);
    char ratio[16], hit[16], txn[16];
    std::snprintf(ratio, sizeof ratio, "%.1fx", tex_gbps / glob_gbps);
    std::snprintf(hit, sizeof hit, "%.3f", tex.sim.metrics.tex_hit_rate());
    std::snprintf(txn, sizeof txn, "%.1fx",
                  static_cast<double>(glob.sim.metrics.global_transactions) /
                      static_cast<double>(tex.sim.metrics.global_transactions));
    table.add_row({std::to_string(count), format_gbps(tex_gbps),
                   format_gbps(glob_gbps), ratio, hit, txn});
  }

  std::printf("ext: STT placement — texture path vs plain global loads (%s input)\n\n",
              format_bytes(size).c_str());
  table.print(std::cout);
  std::printf("\nthe texture caches absorb the hot STT rows; fetching the same "
              "rows with scattered global loads multiplies memory traffic "
              "(last column) — the paper's Section IV data-placement argument.\n");
  return 0;
}
