// Extension analysis: what the paper's timing excludes. Section V states
// that STT construction and host->device copies are ignored because they
// are one-time costs. This bench quantifies that argument with a PCIe 2.0
// x16 transfer model over the sweep results: how many scans of the input
// amortise the STT upload, and what end-to-end throughput looks like when
// the input copy is charged on every scan.
#include <cstdio>
#include <iostream>

#include "harness/report.h"
#include "util/arg_parser.h"
#include "util/byte_units.h"
#include "util/table.h"

using namespace acgpu;
using namespace acgpu::harness;

namespace {

/// Effective PCIe 2.0 x16 host->device bandwidth (GTX 285 era): ~5.2 GB/s
/// nominal, ~4 GB/s sustained for large pinned transfers.
constexpr double kPcieBytesPerSecond = 4.0e9;

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Extension: charges the host->device copies the paper excludes and "
      "reports amortisation break-evens.");
  args.add_bool_flag("quick", "use the reduced sweep grid");
  if (!args.parse(argc, argv)) return 0;

  const SweepConfig config =
      args.get_bool("quick") ? SweepConfig::quick() : SweepConfig::paper();
  const SweepOutcome outcome = run_sweep_cached(config, &std::cerr);

  // Largest input row: the regime the headline numbers come from.
  std::uint64_t size = 0;
  for (const auto& r : outcome.results) size = std::max(size, r.text_bytes);

  Table table;
  table.set_header({"patterns", "STT", "STT copy", "text copy", "kernel",
                    "kernel Gbps", "end-to-end Gbps", "scans to amortise STT"});
  for (const auto& r : outcome.results) {
    if (r.text_bytes != size) continue;
    const double stt_copy = r.stt_mbytes * 1e6 / kPcieBytesPerSecond;
    const double text_copy = static_cast<double>(r.text_bytes) / kPcieBytesPerSecond;
    const double kernel = r.shared.seconds;
    const double end_to_end =
        static_cast<double>(r.text_bytes) * 8.0 / (kernel + text_copy) / 1e9;
    // Scans after which the one-time STT copy is <1% of accumulated kernel time.
    const double scans = stt_copy / (0.01 * kernel);
    char scans_s[16];
    std::snprintf(scans_s, sizeof scans_s, "%.0f", scans);
    table.add_row({std::to_string(r.pattern_count),
                   format_bytes(static_cast<std::uint64_t>(r.stt_mbytes * 1e6)),
                   format_seconds(stt_copy), format_seconds(text_copy),
                   format_seconds(kernel), format_gbps(r.shared_gbps()),
                   format_gbps(end_to_end), scans_s});
  }

  std::printf("ext: host->device transfer amortisation (input %s, shared kernel, "
              "PCIe %.1f GB/s)\n\n",
              format_bytes(size).c_str(), kPcieBytesPerSecond / 1e9);
  table.print(std::cout);
  std::printf(
      "\nthe paper's exclusion is defensible for the dictionary (STT copy "
      "amortises quickly when the same dictionary scans many inputs) but the "
      "text copy is a real per-scan cost: end-to-end throughput is bounded by "
      "PCIe (%.0f Gbps) regardless of kernel speed.\n",
      kPcieBytesPerSecond * 8 / 1e9);
  return 0;
}
