// Microbenchmarks for the workload generators (corpus synthesis must be
// cheap relative to the sweep it feeds).
#include <benchmark/benchmark.h>

#include "cpumodel/serial_timing.h"
#include "workload/dna.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"
#include "workload/seed_text.h"

namespace {

using namespace acgpu;

void BM_MarkovGenerate(benchmark::State& state) {
  const workload::MarkovModel model{workload::seed_text()};
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(model.generate(bytes, 42).size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MarkovGenerate)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void BM_PatternExtract(benchmark::State& state) {
  const std::string corpus = workload::make_corpus(4 << 20, 77);
  workload::ExtractConfig ec;
  ec.count = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::extract_patterns(corpus, ec).size());
}
BENCHMARK(BM_PatternExtract)->Arg(100)->Arg(10000);

void BM_DnaGenerate(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::make_dna_sequence(1 << 20, 7).size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_DnaGenerate);

void BM_SerialTimingEstimate(benchmark::State& state) {
  const std::string corpus = workload::make_corpus(2 << 20, 78);
  workload::ExtractConfig ec;
  ec.count = 1000;
  const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(corpus, ec));
  const std::string_view sample(corpus.data(), 1 << 20);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cpumodel::estimate_serial(dfa, sample, corpus.size()).cycles_per_byte);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_SerialTimingEstimate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
