// Extension ablation (beyond the paper): PFAC (Lin et al. [3], one thread
// per byte, failureless) vs the paper's chunked shared-memory AC kernel on
// the same simulated GTX 285. PFAC trades the X-byte overlap rescanning for
// perfectly coalesced first-step loads and early thread death.
#include <cstdio>
#include <iostream>

#include "ac/pfac.h"
#include "kernels/ac_kernel.h"
#include "kernels/pfac_kernel.h"
#include "util/arg_parser.h"
#include "util/byte_units.h"
#include "util/table.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args(
      "Extension: PFAC kernel vs the paper's shared-memory AC kernel "
      "(simulated GTX 285).");
  args.add_flag("max-size", "largest input size", "16MB");
  if (!args.parse(argc, argv)) return 0;

  const gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  const std::uint64_t max_size = args.get_bytes("max-size");
  const std::vector<std::uint64_t> sizes = {max_size / 16, max_size / 4, max_size};
  const std::vector<std::uint32_t> counts = {100, 2000, 10000};

  std::fprintf(stderr, "generating %s corpus...\n", format_bytes(max_size).c_str());
  const std::string corpus =
      workload::make_corpus(static_cast<std::size_t>(max_size), 4242);

  Table table;
  table.set_header({"input", "patterns", "AC shared Gbps", "PFAC Gbps",
                    "PFAC/AC", "PFAC threads"});

  for (const std::uint32_t count : counts) {
    workload::ExtractConfig ec;
    ec.count = count;
    const ac::PatternSet patterns = workload::extract_patterns(corpus, ec);
    const ac::Dfa dfa = ac::build_dfa(patterns, 8);
    const ac::PfacAutomaton pfac(patterns);

    // PFAC allocates per-byte output slots, so budget device memory by size.
    gpusim::DeviceMemory mem(static_cast<std::size_t>(
        max_size + dfa.stt_bytes() * 2 + (max_size + 4096) * 24 + (64 << 20)));
    const kernels::DeviceDfa ddfa(mem, dfa);
    const kernels::DevicePfac dpfac(mem, pfac);
    const auto text_addr = kernels::upload_text(mem, corpus);

    for (const std::uint64_t size : sizes) {
      std::size_t mark = mem.mark();
      kernels::AcLaunchSpec ac_spec;
      ac_spec.approach = kernels::Approach::kShared;
      const auto ac_out =
          kernels::run_ac_kernel(cfg, mem, ddfa, text_addr, size, ac_spec);
      mem.release(mark);

      mark = mem.mark();
      kernels::PfacLaunchSpec pfac_spec;
      pfac_spec.match_capacity = 2;
      const auto pfac_out =
          kernels::run_pfac_kernel(cfg, mem, dpfac, text_addr, size, pfac_spec);
      mem.release(mark);

      const double ac_gbps = to_gbps(size, ac_out.sim.seconds);
      const double pfac_gbps = to_gbps(size, pfac_out.sim.seconds);
      char ratio[16];
      std::snprintf(ratio, sizeof ratio, "%.2fx", pfac_gbps / ac_gbps);
      table.add_row({format_bytes(size), std::to_string(count),
                     format_gbps(ac_gbps), format_gbps(pfac_gbps), ratio,
                     std::to_string(pfac_out.threads)});
    }
  }

  std::printf("ext: PFAC vs the paper's shared-memory AC kernel\n\n");
  table.print(std::cout);
  std::printf(
      "\nnote: PFAC removes the chunk-overlap rescan (X-1 extra bytes per "
      "thread) and its step-0 loads coalesce perfectly, but it launches one "
      "thread per input byte and loses shared-memory staging.\n");
  return 0;
}
