// ext_observability_overhead — proves the observability stack is cheap
// enough to leave on.
//
//   ext_observability_overhead                     # 5% gate at 8 MB
//   ext_observability_overhead --size 64MB         # the CI regime
//   ext_observability_overhead --threshold 1.25    # noisy-machine margin
//
// Runs the canonical BENCH_pipeline workload (Engine::scan, Timed sim,
// kShared) twice per iteration: once with TelemetryOptions fully null and
// once with the always-on production set armed — metrics registry, flight
// recorder, logger. Wall-clock host time is taken per run and the gate is
//
//   median(enabled) / median(disabled) <= threshold   (default 1.05)
//
// exit 1 when the ratio exceeds it. Tracing is excluded: the tracer is the
// opt-in debugging tier, not the always-on tier (docs/OBSERVABILITY.md).
//
// Two zero-cost claims are asserted, not measured:
//  - Disabled is structurally free: with every telemetry pointer null,
//    TelemetryOptions::enabled() is false and the pipeline's only cost is
//    that branch — the recorder handed to the enabled runs is asserted
//    untouched by the disabled ones (recorded() unchanged).
//  - Zero perturbation: telemetry must observe the simulation, never steer
//    it — the simulated makespan and match count of every enabled run are
//    asserted bit-identical to the disabled run's.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "acgpu.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

using namespace acgpu;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "ext_observability_overhead: gate the wall-clock cost of the always-on "
      "observability stack (metrics + flight recorder + logger) against the "
      "telemetry-off pipeline.\n"
      "usage: ext_observability_overhead [flags]");
  args.add_flag("size", "input size per scan", "8MB");
  args.add_flag("batch", "owned bytes per pipeline batch", "1MB");
  args.add_flag("streams", "pipeline streams", "4");
  args.add_flag("patterns", "dictionary size", "2000");
  args.add_flag("seed", "workload seed", "780");
  args.add_flag("iterations", "scan repetitions per configuration", "5");
  args.add_flag("threshold", "max allowed enabled/disabled host-time ratio",
                "1.05");
  args.add_flag("json", "write the result JSON here (empty = skip)", "");
  args.add_bool_flag("quiet", "suppress the per-iteration table");

  try {
    if (!args.parse(argc, argv)) return 0;
    const auto size = static_cast<std::uint64_t>(args.get_bytes("size"));
    const auto iterations = static_cast<std::size_t>(args.get_int("iterations"));
    const double threshold = args.get_double("threshold");
    ACGPU_CHECK(iterations > 0, "--iterations must be >= 1");

    const std::uint64_t pool_bytes = 4u << 20;
    const std::string corpus = workload::make_corpus(
        size + pool_bytes, static_cast<std::uint64_t>(args.get_int("seed")));
    workload::ExtractConfig ec;
    ec.count = static_cast<std::uint32_t>(args.get_int("patterns"));
    ec.min_length = 6;
    ec.max_length = 16;
    ec.word_aligned = true;
    const ac::PatternSet patterns =
        workload::extract_patterns({corpus.data() + size, pool_bytes}, ec);

    telemetry::MetricsRegistry registry;
    telemetry::FlightRecorder recorder;
    telemetry::Logger logger;  // default stderr-less sink config, never fires

    const auto run = [&](bool enabled) {
      EngineOptions opt;
      opt.variant = pipeline::KernelVariant::kShared;
      opt.streams = static_cast<std::uint32_t>(args.get_int("streams"));
      opt.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));
      opt.mode = gpusim::SimMode::Timed;
      opt.device_memory_bytes = 1u << 30;
      if (enabled) {
        opt.telemetry.metrics = &registry;
        opt.telemetry.recorder = &recorder;
        opt.telemetry.logger = &logger;
      }
      DeviceOptions dopt;
      dopt.gpu = opt.gpu;
      dopt.memory_bytes = opt.device_memory_bytes;
      Result<Device> device = Device::create(dopt);
      ACGPU_CHECK(device.is_ok(), device.status().to_string());
      Result<Engine> engine = Engine::create(device.value(), patterns, opt);
      ACGPU_CHECK(engine.is_ok(), engine.status().to_string());
      Stopwatch clock;
      Result<ScanResult> scan = engine.value().scan({corpus.data(), size});
      const double host_s = clock.seconds();
      ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
      struct Run {
        double host_s, makespan_s;
        std::size_t matches;
      };
      return Run{host_s, scan.value().stats.makespan_seconds,
                 scan.value().matches.size()};
    };

    std::vector<double> off_s, on_s;
    double ref_makespan = 0;
    std::size_t ref_matches = 0;
    for (std::size_t i = 0; i < iterations; ++i) {
      const std::uint64_t recorded_before = recorder.recorded();
      const auto off = run(false);
      ACGPU_CHECK(recorder.recorded() == recorded_before,
                  "the disabled pipeline touched the flight recorder");
      const auto on = run(true);
      if (i == 0) {
        ref_makespan = off.makespan_s;
        ref_matches = off.matches;
      }
      // Zero perturbation: the simulation must be bit-identical with the
      // observers attached.
      ACGPU_CHECK(off.makespan_s == ref_makespan && on.makespan_s == ref_makespan,
                  "telemetry perturbed the simulated makespan");
      ACGPU_CHECK(off.matches == ref_matches && on.matches == ref_matches,
                  "telemetry perturbed the match stream");
      off_s.push_back(off.host_s);
      on_s.push_back(on.host_s);
      if (!args.get_bool("quiet"))
        std::printf("iter %zu: off %s  on %s\n", i,
                    format_seconds(off.host_s).c_str(),
                    format_seconds(on.host_s).c_str());
    }

    const double off_med = median(off_s);
    const double on_med = median(on_s);
    const double ratio = off_med > 0 ? on_med / off_med : 0.0;
    std::printf(
        "observability overhead: off %s, on %s, ratio %.4f (threshold %.2f); "
        "%llu recorder event(s)\n",
        format_seconds(off_med).c_str(), format_seconds(on_med).c_str(), ratio,
        threshold, static_cast<unsigned long long>(recorder.recorded()));

    const std::string json_path = args.get("json");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      ACGPU_CHECK(out.good(), "cannot write " << json_path);
      out << "{\"bench\":\"observability_overhead\",\"size_bytes\":" << size
          << ",\"iterations\":" << iterations
          << ",\"off_median_seconds\":" << off_med
          << ",\"on_median_seconds\":" << on_med << ",\"ratio\":" << ratio
          << ",\"threshold\":" << threshold
          << ",\"recorder_events\":" << recorder.recorded() << "}\n";
    }

    if (ratio > threshold) {
      std::printf("ext_observability_overhead: FAIL (ratio %.4f > %.2f)\n",
                  ratio, threshold);
      return 1;
    }
    std::puts("ext_observability_overhead: PASS");
  } catch (const Error& e) {
    std::fprintf(stderr, "ext_observability_overhead: %s\n", e.what());
    return 2;
  }
  return 0;
}
