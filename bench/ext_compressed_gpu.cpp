// Extension: dense vs compressed STT on the GPU (connecting the paper's
// ref [19] to its memory-hierarchy story). The dense table costs one texel
// fetch per byte but grows to hundreds of MB; the compressed table needs up
// to three fetches per byte but stays cache-resident. The interesting
// question is where the crossover falls on the pattern-count axis.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Extension: dense-STT kernel vs compressed-STT kernel.");
  args.add_flag("size", "input size", "16MB");
  if (!args.parse(argc, argv)) return 0;

  const gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  const auto size = static_cast<std::size_t>(args.get_bytes("size"));
  const std::string corpus = workload::make_corpus(size + 4 * kMiB, 781);
  const std::string_view input(corpus.data(), size);
  const std::string_view pool(corpus.data() + size, 4 * kMiB);

  Table table;
  table.set_header({"patterns", "dense STT", "compressed", "dense Gbps",
                    "compressed Gbps", "compressed/dense", "dense tex hit",
                    "compressed tex hit"});

  for (std::uint32_t count : {100u, 1000u, 5000u, 20000u}) {
    workload::ExtractConfig ec;
    ec.count = count;
    ec.word_aligned = true;
    const ac::PatternSet patterns = workload::extract_patterns(pool, ec);
    const ac::Dfa dfa = ac::build_dfa(patterns, 8);
    const ac::CompressedStt cstt(dfa);

    gpusim::DeviceMemory mem(1ull << 30);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const kernels::DeviceCompressedDfa dcdfa(mem, cstt, dfa);
    const auto addr = kernels::upload_text(mem, input);

    std::size_t mark = mem.mark();
    kernels::AcLaunchSpec dense_spec;
    dense_spec.approach = kernels::Approach::kShared;
    dense_spec.chunk_bytes = 64;
    dense_spec.threads_per_block = 192;
    const auto dense =
        kernels::run_ac_kernel(cfg, mem, ddfa, addr, input.size(), dense_spec);
    mem.release(mark);

    mark = mem.mark();
    kernels::CompressedLaunchSpec comp_spec;
    const auto comp =
        kernels::run_compressed_kernel(cfg, mem, dcdfa, addr, input.size(), comp_spec);
    mem.release(mark);

    const double dense_gbps = to_gbps(input.size(), dense.sim.seconds);
    const double comp_gbps = to_gbps(input.size(), comp.sim.seconds);
    char ratio[16], h1[16], h2[16];
    std::snprintf(ratio, sizeof ratio, "%.2fx", comp_gbps / dense_gbps);
    std::snprintf(h1, sizeof h1, "%.3f", dense.sim.metrics.tex_hit_rate());
    std::snprintf(h2, sizeof h2, "%.3f", comp.sim.metrics.tex_hit_rate());
    table.add_row({std::to_string(count),
                   format_bytes(dfa.stt_bytes()),
                   format_bytes(dcdfa.device_bytes()), format_gbps(dense_gbps),
                   format_gbps(comp_gbps), ratio, h1, h2});
  }

  std::printf("ext: dense vs compressed STT on the simulated GTX 285 (%s input)\n\n",
              format_bytes(size).c_str());
  table.print(std::cout);
  std::printf("\nthe compressed table trades extra fetches per byte for a "
              "10-60x smaller texture working set; it wins once the dense "
              "table stops fitting the texture caches.\n");
  return 0;
}
