// Figure 19: the paper's illustration of multithreaded latency hiding —
// (a) memory latencies covered by other warps' useful computation vs
// (b) saturation from excessive context switching. The paper draws this
// conceptually; we print the measured counterpart from the simulator: the
// issue-port utilisation and the stall breakdown per approach, across the
// pattern-count axis (where the texture-miss-driven context switches grow).
#include <cstdio>
#include <iostream>

#include "harness/report.h"
#include "util/arg_parser.h"
#include "util/byte_units.h"
#include "util/table.h"

using namespace acgpu;
using namespace acgpu::harness;

namespace {

void print_breakdown(const char* name, const std::vector<PointResult>& results,
                     const ApproachStats PointResult::*stats,
                     const gpusim::GpuConfig& gpu, std::uint64_t size) {
  Table table;
  table.set_header({"patterns", "issue util", "stall:gmem", "stall:tex",
                    "stall:smem", "stall:barrier", "tex hit"});
  for (const auto& r : results) {
    if (r.text_bytes != size) continue;
    const ApproachStats& s = r.*stats;
    // Total warp-cycles available while the sampled blocks ran.
    const double capacity = s.sim_makespan_cycles * gpu.num_sms;
    const double stall_total = static_cast<double>(s.stall_global + s.stall_tex +
                                                   s.stall_shared + s.stall_barrier);
    auto pct = [&](double v) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f%%", stall_total > 0 ? v / stall_total * 100 : 0);
      return std::string(buf);
    };
    char util[16], hit[16];
    std::snprintf(util, sizeof util, "%.1f%%",
                  capacity > 0 ? static_cast<double>(s.issue_cycles) / capacity * 100 : 0);
    std::snprintf(hit, sizeof hit, "%.3f", s.tex_hit_rate);
    table.add_row({std::to_string(r.pattern_count), util,
                   pct(static_cast<double>(s.stall_global)),
                   pct(static_cast<double>(s.stall_tex)),
                   pct(static_cast<double>(s.stall_shared)),
                   pct(static_cast<double>(s.stall_barrier)), hit});
  }
  std::printf("\n%s approach (input %s; stall columns = share of warp stall cycles):\n",
              name, format_bytes(size).c_str());
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Reproduces the paper's Figure 19: how well multithreading hides memory "
      "latency, per approach, as the pattern count grows.");
  args.add_bool_flag("quick", "run the reduced grid instead of the paper grid");
  if (!args.parse(argc, argv)) return 0;

  const SweepConfig config =
      args.get_bool("quick") ? SweepConfig::quick() : SweepConfig::paper();
  const SweepOutcome outcome = run_sweep_cached(config, &std::cerr);
  const std::uint64_t size = config.sizes[config.sizes.size() / 2];

  std::printf("fig19: Performance effects of multithreading%s\n",
              outcome.from_cache ? "  (sweep loaded from cache)" : "");
  print_breakdown("global-memory-only", outcome.results, &PointResult::global,
                  config.gpu, size);
  print_breakdown("shared-memory", outcome.results, &PointResult::shared,
                  config.gpu, size);
  std::printf(
      "\npaper's claim: the shared approach stays near case (a) — latencies "
      "hidden by useful computation (high issue utilisation) — while the "
      "global-only approach saturates (case (b): stalls dominated by global "
      "memory, low issue utilisation).\n");
  return 0;
}
