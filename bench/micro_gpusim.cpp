// Microbenchmarks for the simulator's own cost-model components and the
// end-to-end simulation rate (simulated bytes per host second) — useful for
// sizing sample_waves in the sweeps.
#include <benchmark/benchmark.h>

#include <vector>

#include "gpusim/coalescer.h"
#include "gpusim/launcher.h"
#include "gpusim/shared_memory.h"
#include "gpusim/texture_cache.h"
#include "kernels/ac_kernel.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace {

using namespace acgpu;
using namespace acgpu::gpusim;

void BM_Coalesce(benchmark::State& state) {
  std::vector<DevAddr> addrs;
  for (int l = 0; l < 32; ++l) addrs.push_back(static_cast<DevAddr>(l) * state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(coalesce(addrs, 4, 128).transactions);
}
BENCHMARK(BM_Coalesce)->Arg(4)->Arg(64)->Arg(4096);

void BM_BankConflicts(benchmark::State& state) {
  std::vector<std::uint32_t> addrs;
  for (std::uint32_t l = 0; l < 32; ++l)
    addrs.push_back(l * static_cast<std::uint32_t>(state.range(0)) * 4);
  for (auto _ : state) benchmark::DoNotOptimize(bank_conflicts(addrs, 16, 16).total_degree);
}
BENCHMARK(BM_BankConflicts)->Arg(1)->Arg(16);

void BM_TextureCacheAccess(benchmark::State& state) {
  TextureCache cache(8 * 1024, 32, 4);
  DevAddr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(a));
    a = (a + 4099) % (1 << 20);  // pseudo-random walk
  }
}
BENCHMARK(BM_TextureCacheAccess);

void BM_SimulationRate(benchmark::State& state) {
  // How fast does the detailed simulation itself run? Reported as simulated
  // input bytes per host second for the shared-memory kernel.
  GpuConfig cfg = GpuConfig::gtx285();
  const std::string text = workload::make_corpus(1 << 20, 55);
  workload::ExtractConfig ec;
  ec.count = 500;
  const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(text, ec), 8);
  DeviceMemory mem(64 << 20);
  const kernels::DeviceDfa ddfa(mem, dfa);
  const auto text_addr = kernels::upload_text(mem, text);
  kernels::AcLaunchSpec spec;
  spec.approach = kernels::Approach::kShared;
  spec.sim.mode = SimMode::Timed;
  spec.sim.sample_waves = 2;

  std::uint64_t simulated_bytes = 0;
  for (auto _ : state) {
    const std::size_t mark = mem.mark();
    const auto out = kernels::run_ac_kernel(cfg, mem, ddfa, text_addr, text.size(), spec);
    mem.release(mark);
    simulated_bytes += out.sim.simulated_blocks * 128 * 64;  // blocks * tpb * chunk
    benchmark::DoNotOptimize(out.sim.cycles);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(simulated_bytes));
}
BENCHMARK(BM_SimulationRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
