#!/usr/bin/env bash
# Builds the conformance harness under ASan+UBSan and runs the smoke sweep.
# Every future perf PR should pass this before touching a matcher hot path:
#
#   bench/run_conformance_asan.sh                 # 50 workloads, seed 1
#   ITERATIONS=500 SEED=42 bench/run_conformance_asan.sh   # pre-merge gate
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-asan"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACGPU_SANITIZE=address,undefined
cmake --build "${BUILD}" -j "$(nproc)" --target ac_conformance

UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${BUILD}/examples/ac_conformance" \
    --iterations "${ITERATIONS:-50}" --seed "${SEED:-1}"
