// Extension to Fig 23: the full staging-scheme ladder, adding the
// no-coalescing baseline (each thread serially copies its own chunk) that
// the paper mentions but does not plot.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args(
      "Extension: all three shared-memory staging schemes "
      "(sequential / coalesced-naive / diagonal).");
  args.add_flag("size", "input size", "16MB");
  if (!args.parse(argc, argv)) return 0;

  const gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  const auto size = static_cast<std::size_t>(args.get_bytes("size"));
  const std::string corpus = workload::make_corpus(size + 4 * kMiB, 778);
  const std::string_view input(corpus.data(), size);
  const std::string_view pool(corpus.data() + size, 4 * kMiB);

  Table table;
  table.set_header({"patterns", "sequential Gbps", "naive Gbps", "diagonal Gbps",
                    "diag/seq", "diag/naive", "conflict cyc (naive)"});

  for (std::uint32_t count : {100u, 1000u, 10000u}) {
    workload::ExtractConfig ec;
    ec.count = count;
    ec.word_aligned = true;
    const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(pool, ec), 8);
    gpusim::DeviceMemory mem(1ull << 30);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const auto addr = kernels::upload_text(mem, input);

    auto run = [&](kernels::StoreScheme scheme) {
      kernels::AcLaunchSpec spec;
      spec.approach = kernels::Approach::kShared;
      spec.scheme = scheme;
      spec.chunk_bytes = 64;
      spec.threads_per_block = 192;
      const std::size_t mark = mem.mark();
      const auto out = kernels::run_ac_kernel(cfg, mem, ddfa, addr, input.size(), spec);
      mem.release(mark);
      return out;
    };

    const auto seq = run(kernels::StoreScheme::kSequential);
    const auto naive = run(kernels::StoreScheme::kCoalescedNaive);
    const auto diag = run(kernels::StoreScheme::kDiagonal);
    char r1[16], r2[16];
    std::snprintf(r1, sizeof r1, "%.2fx", seq.sim.seconds / diag.sim.seconds);
    std::snprintf(r2, sizeof r2, "%.2fx", naive.sim.seconds / diag.sim.seconds);
    table.add_row({std::to_string(count),
                   format_gbps(to_gbps(input.size(), seq.sim.seconds)),
                   format_gbps(to_gbps(input.size(), naive.sim.seconds)),
                   format_gbps(to_gbps(input.size(), diag.sim.seconds)), r1, r2,
                   std::to_string(naive.sim.metrics.shared_conflict_cycles)});
  }

  std::printf("ext: staging-scheme ladder (%s input; diagonal = the paper's scheme)\n\n",
              format_bytes(size).c_str());
  table.print(std::cout);
  std::printf("\nsequential staging loses on uncoalesced loads, naive staging on "
              "16-way bank conflicts during matching; the diagonal scheme fixes "
              "both (Section IV.B.3).\n");
  return 0;
}
