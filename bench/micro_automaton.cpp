// Microbenchmarks for phase 1 of the AC algorithm (automaton/STT
// construction) and the serial matchers. google-benchmark binary.
#include <benchmark/benchmark.h>

#include "ac/compressed_stt.h"
#include "ac/dfa.h"
#include "ac/parallel_matcher.h"
#include "ac/nfa_matcher.h"
#include "ac/pfac.h"
#include "ac/serial_matcher.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace {

using namespace acgpu;

ac::PatternSet patterns_for(std::uint32_t count) {
  static const std::string corpus = workload::make_corpus(4 << 20, 999);
  workload::ExtractConfig ec;
  ec.count = count;
  return workload::extract_patterns(corpus, ec);
}

void BM_TrieBuild(benchmark::State& state) {
  const auto set = patterns_for(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    ac::Trie trie(set);
    benchmark::DoNotOptimize(trie.node_count());
  }
  state.SetLabel(std::to_string(set.size()) + " patterns");
}
BENCHMARK(BM_TrieBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AutomatonBuild(benchmark::State& state) {
  const auto set = patterns_for(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    ac::Automaton automaton(set);
    benchmark::DoNotOptimize(automaton.state_count());
  }
}
BENCHMARK(BM_AutomatonBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DfaBuild(benchmark::State& state) {
  const auto set = patterns_for(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    const ac::Dfa dfa = ac::build_dfa(set);
    benchmark::DoNotOptimize(dfa.state_count());
  }
}
BENCHMARK(BM_DfaBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SerialMatch(benchmark::State& state) {
  const auto set = patterns_for(static_cast<std::uint32_t>(state.range(0)));
  const ac::Dfa dfa = ac::build_dfa(set);
  const std::string text = workload::make_corpus(1 << 20, 1000);
  for (auto _ : state) benchmark::DoNotOptimize(ac::count_matches(dfa, text));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SerialMatch)->Arg(100)->Arg(1000)->Arg(10000);

// The DFA's selling point: compare against walking goto/failure links.
void BM_NfaMatch(benchmark::State& state) {
  const auto set = patterns_for(1000);
  const ac::Automaton automaton(set);
  const std::string text = workload::make_corpus(1 << 20, 1001);
  for (auto _ : state) {
    ac::CountSink sink;
    ac::match_nfa(automaton, text, sink);
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_NfaMatch);

void BM_CompressedSttBuild(benchmark::State& state) {
  const auto set = patterns_for(static_cast<std::uint32_t>(state.range(0)));
  const ac::Dfa dfa = ac::build_dfa(set);
  for (auto _ : state) {
    ac::CompressedStt c(dfa);
    benchmark::DoNotOptimize(c.size_bytes());
  }
  state.SetLabel("ratio " +
                 std::to_string(ac::CompressedStt(dfa).compression_ratio()));
}
BENCHMARK(BM_CompressedSttBuild)->Arg(1000)->Arg(10000);

void BM_CompressedSttMatch(benchmark::State& state) {
  const auto set = patterns_for(1000);
  const ac::Dfa dfa = ac::build_dfa(set);
  const ac::CompressedStt c(dfa);
  const std::string text = workload::make_corpus(1 << 20, 1003);
  for (auto _ : state) {
    ac::CountSink sink;
    ac::match_compressed(c, dfa, text, sink);
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_CompressedSttMatch);

void BM_ParallelMatch(benchmark::State& state) {
  const auto set = patterns_for(1000);
  const ac::Dfa dfa = ac::build_dfa(set);
  const std::string text = workload::make_corpus(1 << 20, 1004);
  for (auto _ : state)
    benchmark::DoNotOptimize(ac::count_matches_parallel(
        dfa, text, static_cast<unsigned>(state.range(0))));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParallelMatch)->Arg(1)->Arg(2)->Arg(4);

void BM_PfacSerialMatch(benchmark::State& state) {
  const auto set = patterns_for(1000);
  const ac::PfacAutomaton pfac(set);
  const std::string text = workload::make_corpus(1 << 20, 1002);
  for (auto _ : state) benchmark::DoNotOptimize(ac::find_all_pfac(pfac, text).size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_PfacSerialMatch);

}  // namespace

BENCHMARK_MAIN();
