// check_regression — the telemetry perf-regression gate.
//
// Runs the canonical pipeline workload with the metrics registry attached,
// snapshots it, and compares the snapshot against a checked-in baseline of
// named bounds (bench/baselines/telemetry_baseline.json). The baseline
// protects the three load-bearing numbers of the reproduction:
//
//   pipeline.overlap_ratio     the multi-stream copy/compute overlap win
//   gpusim.shared.max_degree   the diagonal scheme's bank-conflict-free claim
//   gpusim.tex.hit_rate        the texture-cache locality the kernels rely on
//
// Exit status: 0 when every check passes, 1 on any violation (missing series
// included), 2 on bad usage / IO. CI runs it at 64 MB; the ctest entries run
// the same binary at 8 MB — the baseline bounds hold at both regimes, and a
// deliberately degraded --streams 1 run is checked to FAIL (WILL_FAIL) so
// the gate itself is known to bite.
//
// Updating the baseline after an intentional perf change:
//   build/bench/check_regression --write-baseline bench/baselines/telemetry_baseline.json
// re-bands the gated series around the current run (see docs/OBSERVABILITY.md).
//
// --mode serve swaps the workload for the streaming session service driver
// (run_serve_workload below) and gates the serve.* counters against
// bench/baselines/serve_baseline.json: a deterministic single-threaded
// replay of 48 seeded streams through a 32-session / 8-chunk-queue service,
// so evictions, kOverloaded rejections, and superbatch counts are exact.
//
// --mode latency is the latency-under-load gate: a fixed chunk trace is
// replayed through the serve Scheduler into superbatches, each superbatch is
// scanned through the Engine in Timed mode, and completions are chained
// through a deterministic queueing model (arrival i at i * interval;
// C_i = max(A_i, C_{i-1}) + makespan_i; latency = C_i - A_i). The p50/p99 of
// that latency distribution are pinned in bench/baselines/
// latency_baseline.json, generated from a streams=2 run — so a throughput
// win that regresses tail latency past the old two-stream behaviour fails
// the gate. A degraded --pool-depth 1 run (no staging depth, the pipeline
// cannot absorb arrival bursts, the backlog grows without bound) is checked
// to FAIL (WILL_FAIL) so this gate is also known to bite.
//
// --mode cluster gates the multi-device router tier against
// bench/baselines/cluster_baseline.json: a deterministic session replay
// across 4 shards with a mid-replay device failure pins the rebalance
// counters and per-shard batch counts, and a Timed scatter/gather probe
// pins the 4-device scaling ratio. The degraded --cluster-devices 1 run is
// checked to FAIL (WILL_FAIL).
//
// --mode dispatch gates the adaptive backend dispatcher against
// bench/baselines/dispatch_baseline.json: the ext_dispatch three-family
// workload (tiny/mid/large scans through one DispatchEngine, every number
// deterministic modeled seconds) pins the dispatch.decisions.* routing
// census, zero mispredictions, the tune-cache counters, and the two
// acceptance ratios — dispatched vs best-static per family and dispatched
// vs best-single-static on the mixed sweep. The --dispatch-force worst
// demo routes every scan to the predicted-slowest backend: the ratios
// collapse and the decision census shifts, so the gate must FAIL
// (WILL_FAIL), proving it bites.
//
// --mode slo gates the SLO/health monitor tier against
// bench/baselines/slo_baseline.json: a deterministic 16-session replay
// across a 4-device cluster with the serving-default SLO policy pins every
// shard's health.<k>.state at ok, shard 0's windowed error rate and breach
// count at zero, and bands its wall-clock feed p99 (the one non-simulated
// number — banded generously, it exists to catch order-of-magnitude
// regressions). The --slo-overload 0 demo feeds shard 0's sessions past
// their byte quota: half its feed window turns kCapacityExceeded, the shard
// trips unhealthy, and the state/error/breach pins are violated — the gate
// must FAIL (WILL_FAIL), proving the health monitor bites.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "acgpu.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

using namespace acgpu;

namespace {

/// The gated series — the list --write-baseline re-bands. Order is the
/// baseline-file order.
const std::vector<std::string> kGatedSeries = {
    "pipeline.overlap_ratio",
    "gpusim.shared.max_degree",
    "gpusim.tex.hit_rate",
    "gpusim.global.transactions_per_request",
};

/// --mode serve gates the streaming session service instead. The driver is
/// single-threaded and fully seeded, so every one of these counters is
/// bit-deterministic (bench/baselines/serve_baseline.json pins most of them
/// exactly, min == max).
const std::vector<std::string> kServeGatedSeries = {
    "serve.sessions.opened",
    "serve.sessions.evicted",
    "serve.feeds.accepted",
    "serve.feeds.rejected",
    "serve.queue.max_depth_chunks",
    "serve.batches",
    "serve.scan.host_fallbacks",
    "serve.matches.delivered",
    "serve.matches.spanning",
};

/// --mode latency pins the tail of the under-load latency distribution. The
/// queueing model is deterministic (fixed trace, simulated makespans), so
/// these percentiles are stable run to run; the baseline bands them against
/// the streams=2 reference configuration.
const std::vector<std::string> kLatencyGatedSeries = {
    "pipeline.load.latency_ns.p50",
    "pipeline.load.latency_ns.p99",
};

/// --mode cluster gates the multi-device router tier. Two probes share one
/// registry: a deterministic Functional session replay across the shards
/// with a mid-replay device failure (pins the router.* rebalance counters
/// and the per-shard device.<k>.serve.batches exactly), and a Timed
/// scatter/gather scaling probe publishing router.scan.scaling_ratio =
/// makespan(1 device) / makespan(N devices). The degraded
/// --cluster-devices 1 run must FAIL: the ratio collapses to 1.0, no
/// rebalance fires, and the device.1..3 series never exist.
const std::vector<std::string> kClusterGatedSeries = {
    "router.sessions.opened",
    "router.feeds",
    "router.rebalances",
    "router.sessions.rebalanced",
    "router.scan.scaling_ratio",
    "device.0.serve.batches",
    "device.1.serve.batches",
    "device.2.serve.batches",
    "device.3.serve.batches",
};

/// --mode slo gates the health monitor's verdicts over the 4-device
/// reference replay. Everything except feed_p99_ns is exact (Functional
/// sim, seeded traffic, deterministic placement); the p99 is wall-clock and
/// banded wide.
const std::vector<std::string> kSloGatedSeries = {
    "router.sessions.opened",
    "router.feeds",
    "health.0.state",
    "health.1.state",
    "health.2.state",
    "health.3.state",
    "health.0.error_rate",
    "health.0.breaches",
    "health.0.feed_p99_ns",
};

/// --mode dispatch pins the dispatcher's routing census and acceptance
/// ratios over the deterministic three-family workload. Everything is
/// modeled (cpumodel / gpusim Timed), so every series is exact; the two
/// gate ratios are the same criteria ext_dispatch enforces.
const std::vector<std::string> kDispatchGatedSeries = {
    "dispatch.decisions.serial",
    "dispatch.decisions.parallel",
    "dispatch.decisions.gpu",
    "dispatch.mispredictions",
    "dispatch.tune_cache.hits",
    "dispatch.tune_cache.misses",
    "dispatch.tune_cache.tunes",
    "dispatch.gate.single_family_min_ratio",
    "dispatch.gate.mixed_win_ratio",
};

telemetry::MetricsSnapshot run_workload(const ArgParser& args) {
  const auto size = static_cast<std::uint64_t>(args.get_bytes("size"));
  const std::uint64_t pool_bytes = 4u << 20;
  const std::string corpus =
      workload::make_corpus(size + pool_bytes,
                            static_cast<std::uint64_t>(args.get_int("seed")));
  workload::ExtractConfig ec;
  ec.count = static_cast<std::uint32_t>(args.get_int("patterns"));
  ec.min_length = 6;
  ec.max_length = 16;
  ec.word_aligned = true;
  const ac::PatternSet patterns = workload::extract_patterns(
      {corpus.data() + size, pool_bytes}, ec);

  telemetry::MetricsRegistry registry;
  EngineOptions opt;
  opt.variant = pipeline::KernelVariant::kShared;
  opt.streams = static_cast<std::uint32_t>(args.get_int("streams"));
  opt.pool_depth = static_cast<std::uint32_t>(args.get_int("pool-depth"));
  opt.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));
  opt.mode = gpusim::SimMode::Timed;
  opt.device_memory_bytes = 1u << 30;
  opt.telemetry.metrics = &registry;

  DeviceOptions dopt;
  dopt.gpu = opt.gpu;
  dopt.memory_bytes = opt.device_memory_bytes;
  Result<Device> device = Device::create(dopt);
  ACGPU_CHECK(device.is_ok(), device.status().to_string());
  Result<Engine> engine = Engine::create(device.value(), patterns, opt);
  ACGPU_CHECK(engine.is_ok(), engine.status().to_string());
  Result<ScanResult> scan =
      engine.value().scan({corpus.data(), size});
  ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
  return registry.snapshot();
}

/// The canonical serve workload: sequentially replay N seeded streams
/// through a service sized so every control path fires deterministically —
/// the session cap is below N (LRU evictions), the queue holds 8 chunks
/// under AdmissionPolicy::kReject (kOverloaded backpressure, answered by
/// pump()), and coalescing packs exactly one queue-full of chunks per
/// superbatch. Single caller thread + Functional sim = reproducible
/// counters. Every session is also verified against its serial reference,
/// so the gate doubles as an end-to-end correctness check.
telemetry::MetricsSnapshot run_serve_workload(const ArgParser& args) {
  const auto sessions =
      static_cast<std::size_t>(args.get_int("serve-sessions"));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
  constexpr std::size_t kStreamBytes = 4096;
  constexpr std::size_t kChunk = 256;

  telemetry::MetricsRegistry registry;
  serve::ServeOptions opt;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.max_sessions = 32;
  opt.max_queue_chunks = 8;
  opt.coalesce_bytes = 8 * kChunk;
  opt.admission = serve::AdmissionPolicy::kReject;
  opt.metrics = &registry;

  Result<serve::StreamService> service = serve::StreamService::create(
      ac::PatternSet({"he", "she", "his", "hers", "ab"}), opt);
  ACGPU_CHECK(service.is_ok(), service.status().to_string());
  serve::StreamService& srv = service.value();

  for (std::size_t i = 0; i < sessions; ++i) {
    Rng rng(derive_seed(seed, i));
    std::string stream(kStreamBytes, '\0');
    for (char& c : stream) c = "hershise ab"[rng.next_below(11)];

    const serve::SessionId id = srv.open().value();
    for (std::size_t pos = 0; pos < kStreamBytes; pos += kChunk) {
      for (;;) {
        const Status s =
            srv.feed(id, std::string_view(stream).substr(pos, kChunk));
        if (s.is_ok()) break;
        ACGPU_CHECK(s.code() == StatusCode::kOverloaded, s.to_string());
        ACGPU_CHECK(srv.pump().is_ok(), "pump failed");
      }
    }
    ACGPU_CHECK(srv.drain().is_ok(), "drain failed");
    std::vector<ac::Match> got = srv.poll(id).value();
    ac::normalize_matches(got);
    std::vector<ac::Match> expected = ac::find_all(srv.dfa(), stream);
    ac::normalize_matches(expected);
    ACGPU_CHECK(got == expected,
                "serve session " << id << " diverged from serial reference");
  }
  return registry.snapshot();
}

/// The latency-under-load driver: a fixed chunk trace coalesced by the
/// serve Scheduler into superbatches, each scanned through one Engine in
/// Timed mode. Arrivals are modelled at a fixed interval; completions chain
/// FIFO through the single engine, so when the per-superbatch makespan
/// exceeds the interval the backlog — and with it the tail latency — grows
/// without bound. Everything is seeded and simulated: the percentiles are
/// deterministic.
telemetry::MetricsSnapshot run_latency_workload(const ArgParser& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto batches =
      static_cast<std::uint32_t>(args.get_int("latency-batches"));
  const double interval =
      static_cast<double>(args.get_int("latency-interval-us")) * 1e-6;
  // 4 MB superbatches: large enough that the staging pool's smaller
  // rebalanced batches amortise the fixed per-transfer PCIe setup cost, the
  // regime the pipeline is built for (a 1 MB superbatch would be pure
  // overhead — 16 transfers of setup against 250 us of payload).
  constexpr std::uint64_t kChunkBytes = 1u << 20;
  constexpr std::uint32_t kChunksPerBatch = 4;
  constexpr std::size_t kSessions = 8;
  const std::uint64_t chunks =
      static_cast<std::uint64_t>(batches) * kChunksPerBatch;
  const std::uint64_t trace_bytes = chunks * kChunkBytes;

  const std::uint64_t pool_bytes = 4u << 20;
  const std::string corpus = workload::make_corpus(trace_bytes + pool_bytes, seed);
  workload::ExtractConfig ec;
  ec.count = static_cast<std::uint32_t>(args.get_int("patterns"));
  ec.min_length = 6;
  ec.max_length = 16;
  ec.word_aligned = true;
  const ac::PatternSet patterns = workload::extract_patterns(
      {corpus.data() + trace_bytes, pool_bytes}, ec);

  telemetry::MetricsRegistry registry;
  EngineOptions opt;
  opt.variant = pipeline::KernelVariant::kShared;
  opt.streams = static_cast<std::uint32_t>(args.get_int("streams"));
  opt.pool_depth = static_cast<std::uint32_t>(args.get_int("pool-depth"));
  opt.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));
  opt.mode = gpusim::SimMode::Timed;
  opt.device_memory_bytes = 1u << 30;
  DeviceOptions dopt;
  dopt.gpu = opt.gpu;
  dopt.memory_bytes = opt.device_memory_bytes;
  Result<Device> device = Device::create(dopt);
  ACGPU_CHECK(device.is_ok(), device.status().to_string());
  Result<Engine> engine = Engine::create(device.value(), patterns, opt);
  ACGPU_CHECK(engine.is_ok(), engine.status().to_string());

  // Replay the trace through the scheduler exactly as serve would: chunks
  // round-robin across sessions, coalesced FIFO into superbatches. The
  // queue bounds are sized to admit the whole fixed trace — admission
  // backpressure is the serve gate's concern, not this one's.
  serve::SchedulerOptions sopt;
  sopt.coalesce_bytes = kChunksPerBatch * kChunkBytes;
  sopt.max_queue_bytes = trace_bytes + 1;
  sopt.max_queue_chunks = static_cast<std::uint32_t>(chunks) + 1;
  serve::Scheduler sched(sopt);
  std::vector<std::uint64_t> session_offset(kSessions, 0);
  for (std::uint64_t i = 0; i < chunks; ++i) {
    serve::PendingChunk chunk;
    chunk.session = static_cast<serve::SessionId>(i % kSessions);
    chunk.global_base = session_offset[i % kSessions];
    chunk.bytes = corpus.substr(i * kChunkBytes, kChunkBytes);
    session_offset[i % kSessions] += kChunkBytes;
    ACGPU_CHECK(sched.admit(std::move(chunk)).is_ok(), "admit failed");
  }

  telemetry::Histogram& latency = registry.histogram("pipeline.load.latency_ns");
  telemetry::Gauge& backlog = registry.gauge("pipeline.load.max_backlog_seconds");
  double prev_complete = 0;
  double max_backlog = 0;
  std::uint32_t batch_index = 0;
  while (sched.has_work()) {
    const serve::CoalescedBatch batch = sched.take_batch();
    Result<ScanResult> scan = engine.value().scan(batch.text);
    ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
    const double arrival = batch_index * interval;
    const double complete =
        std::max(arrival, prev_complete) + scan.value().stats.makespan_seconds;
    latency.observe((complete - arrival) * 1e9);
    max_backlog = std::max(max_backlog, prev_complete - arrival);
    prev_complete = complete;
    ++batch_index;
  }
  backlog.set(std::max(max_backlog, 0.0));
  registry.counter("pipeline.load.batches").add(batch_index);
  return registry.snapshot();
}

/// The cluster workload behind kClusterGatedSeries (see its comment). Both
/// probes are fully seeded and single-threaded on the caller side, so every
/// gated counter is bit-deterministic; each migrated session is also
/// verified against its serial reference, so the gate doubles as a
/// zero-loss rebalance check.
telemetry::MetricsSnapshot run_cluster_workload(const ArgParser& args) {
  const auto devices =
      static_cast<std::uint32_t>(args.get_int("cluster-devices"));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
  constexpr std::size_t kSessions = 32;
  constexpr std::size_t kStreamBytes = 4096;
  constexpr std::size_t kChunk = 256;

  telemetry::MetricsRegistry registry;

  // Probe 1: Functional session replay with a mid-replay fail-stop. All 32
  // sessions open up front (round-robin across the healthy shards), every
  // stream feeds its first half, then device 1 is failed — its sessions
  // drain through the exact host fallback and migrate — and the second
  // halves complete on the survivors.
  {
    cluster::ClusterOptions opt;
    opt.devices = devices;
    opt.engine.mode = gpusim::SimMode::Functional;
    opt.engine.gpu.num_sms = 4;
    opt.engine.device_memory_bytes = 64u << 20;
    opt.engine.threads_per_block = 64;
    opt.max_sessions_per_shard = kSessions;
    opt.coalesce_bytes = 8 * kChunk;
    opt.admission = serve::AdmissionPolicy::kAutoFlush;
    opt.metrics = &registry;
    Result<cluster::Router> router = cluster::Router::create(
        ac::PatternSet({"he", "she", "his", "hers", "ab"}), opt);
    ACGPU_CHECK(router.is_ok(), router.status().to_string());
    cluster::Router& cl = router.value();

    std::vector<std::string> streams;
    std::vector<serve::SessionId> ids;
    for (std::size_t i = 0; i < kSessions; ++i) {
      Rng rng(derive_seed(seed, i));
      std::string stream(kStreamBytes, '\0');
      for (char& c : stream) c = "hershise ab"[rng.next_below(11)];
      streams.push_back(std::move(stream));
      ids.push_back(cl.open().value());
    }
    const auto replay = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = 0; i < kSessions; ++i)
        for (std::size_t pos = begin; pos < end; pos += kChunk) {
          const Status s =
              cl.feed(ids[i], std::string_view(streams[i]).substr(pos, kChunk));
          ACGPU_CHECK(s.is_ok(), s.to_string());
        }
    };
    replay(0, kStreamBytes / 2);
    if (devices > 1)
      ACGPU_CHECK(cl.mark_failed(1).is_ok(), "mark_failed(1) failed");
    replay(kStreamBytes / 2, kStreamBytes);
    ACGPU_CHECK(cl.drain().is_ok(), "drain failed");
    for (std::size_t i = 0; i < kSessions; ++i) {
      std::vector<ac::Match> got = cl.poll(ids[i]).value();
      ac::normalize_matches(got);
      std::vector<ac::Match> expected = ac::find_all(cl.dfa(), streams[i]);
      ac::normalize_matches(expected);
      ACGPU_CHECK(got == expected,
                  "cluster session " << ids[i]
                                     << " diverged from serial reference");
    }
    cl.shutdown();
  }

  // Probe 2: Timed scatter/gather scaling — the same input slab-partitioned
  // across 1 device and across N, ratio of simulated makespans. These
  // routers publish no metrics of their own (they would collide with probe
  // 1's per-shard series); only the ratio lands in the registry.
  {
    const auto size = static_cast<std::uint64_t>(args.get_bytes("size"));
    const std::uint64_t pool_bytes = 4u << 20;
    const std::string corpus = workload::make_corpus(size + pool_bytes, seed);
    workload::ExtractConfig ec;
    ec.count = static_cast<std::uint32_t>(args.get_int("patterns"));
    ec.min_length = 6;
    ec.max_length = 16;
    ec.word_aligned = true;
    const ac::PatternSet patterns = workload::extract_patterns(
        {corpus.data() + size, pool_bytes}, ec);

    const auto makespan = [&](std::uint32_t w) {
      cluster::ClusterOptions opt;
      opt.devices = w;
      opt.engine.mode = gpusim::SimMode::Timed;
      opt.engine.variant = pipeline::KernelVariant::kShared;
      opt.engine.chunk_bytes = 64;
      opt.engine.threads_per_block = 192;
      opt.engine.streams = static_cast<std::uint32_t>(args.get_int("streams"));
      opt.engine.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));
      opt.engine.device_memory_bytes = 1u << 30;
      Result<cluster::Router> router = cluster::Router::create(patterns, opt);
      ACGPU_CHECK(router.is_ok(), router.status().to_string());
      Result<cluster::ClusterScanResult> scan =
          router.value().scan({corpus.data(), size});
      ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
      return scan.value().makespan_seconds;
    };
    const double serial = makespan(1);
    const double sharded = devices > 1 ? makespan(devices) : serial;
    registry.gauge("router.scan.scaling_ratio")
        .set(sharded > 0 ? serial / sharded : 0.0);
  }
  return registry.snapshot();
}

/// The SLO reference replay behind kSloGatedSeries: 16 seeded streams
/// across 4 shards (4 sessions each, deterministic placement), the
/// serving-default policy with a window sized so every shard's last
/// evaluation lands exactly on its final feed. In the reference run no
/// dimension breaches and every state pins at ok; with --slo-overload K the
/// driver keeps feeding shard K's sessions past their byte quota, the
/// shard's error window fills with kCapacityExceeded, and the monitor trips
/// it unhealthy — which the baseline pins are designed to reject.
telemetry::MetricsSnapshot run_slo_workload(const ArgParser& args) {
  const int overload = args.get_int("slo-overload");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
  constexpr std::size_t kSessions = 16;
  constexpr std::size_t kStreamBytes = 4096;
  constexpr std::size_t kChunk = 256;

  telemetry::MetricsRegistry registry;
  cluster::ClusterOptions opt;
  opt.devices = 4;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  opt.max_sessions_per_shard = kSessions;
  opt.coalesce_bytes = 8 * kChunk;
  opt.admission = serve::AdmissionPolicy::kAutoFlush;
  opt.metrics = &registry;
  opt.slo = telemetry::SloPolicy::serving_defaults();
  opt.slo.window = 64;       // = feeds per shard: one full window per run
  opt.slo.min_samples = 8;
  opt.health_eval_interval = 4;
  // The overload demo halves the byte quota: the victim shard's sessions
  // are fed their full stream anyway, so their second halves all fail.
  if (overload >= 0) opt.session_limits.max_bytes = kStreamBytes / 2;

  Result<cluster::Router> router = cluster::Router::create(
      ac::PatternSet({"he", "she", "his", "hers", "ab"}), opt);
  ACGPU_CHECK(router.is_ok(), router.status().to_string());
  cluster::Router& cl = router.value();

  std::vector<std::string> streams;
  std::vector<serve::SessionId> ids;
  std::vector<bool> victim;
  for (std::size_t i = 0; i < kSessions; ++i) {
    Rng rng(derive_seed(seed, i));
    std::string stream(kStreamBytes, '\0');
    for (char& c : stream) c = "hershise ab"[rng.next_below(11)];
    streams.push_back(std::move(stream));
    ids.push_back(cl.open().value());
    victim.push_back(overload >= 0 &&
                     cl.shard_of(ids[i]).value() ==
                         static_cast<std::uint32_t>(overload));
  }
  for (std::size_t pos = 0; pos < kStreamBytes; pos += kChunk)
    for (std::size_t i = 0; i < kSessions; ++i) {
      // Non-victims stop at their quota; victims push past it and take the
      // kCapacityExceeded answers into their shard's health window.
      if (overload >= 0 && !victim[i] && pos >= kStreamBytes / 2) continue;
      const Status s =
          cl.feed(ids[i], std::string_view(streams[i]).substr(pos, kChunk));
      if (!s.is_ok())
        ACGPU_CHECK(victim[i] && s.code() == StatusCode::kCapacityExceeded,
                    s.to_string());
    }
  ACGPU_CHECK(cl.drain().is_ok(), "drain failed");
  if (overload < 0)
    for (std::size_t i = 0; i < kSessions; ++i) {
      std::vector<ac::Match> got = cl.poll(ids[i]).value();
      ac::normalize_matches(got);
      std::vector<ac::Match> expected = ac::find_all(cl.dfa(), streams[i]);
      ac::normalize_matches(expected);
      ACGPU_CHECK(got == expected,
                  "slo session " << ids[i] << " diverged from serial reference");
    }
  cl.shutdown();
  return registry.snapshot();
}

/// The dispatch workload behind kDispatchGatedSeries: ext_dispatch's
/// three-family sweep at its default shape (48 tiny 64 B scans, 12 mid
/// 384 B scans, 3 large 2 MB scans — one family per backend's window),
/// replayed under the three forced static policies and under the cost
/// model, single-family and round-robin-mixed. Everything is modeled, so
/// the decision census, the misprediction count, and both acceptance
/// ratios are bit-deterministic. --dispatch-force worst swaps the
/// dispatched sweeps to the predicted-slowest backend.
telemetry::MetricsSnapshot run_dispatch_workload(const ArgParser& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string force_name = args.get("dispatch-force");
  dispatch::ForcePolicy policy = dispatch::ForcePolicy::kAuto;
  if (force_name == "worst") {
    policy = dispatch::ForcePolicy::kWorst;
  } else {
    ACGPU_CHECK(force_name == "auto",
                "--dispatch-force must be auto or worst, got '" << force_name
                                                                << "'");
  }

  struct Fam {
    const char* name;
    std::uint64_t bytes;
    std::uint32_t count;
  };
  constexpr Fam kFams[] = {{"tiny", 64, 48}, {"mid", 384, 12},
                           {"large", 2u << 20, 3}};

  const std::uint64_t pool_bytes = 4u << 20;
  const std::uint64_t corpus_bytes = 2 * (2u << 20) + pool_bytes;
  const std::string corpus = workload::make_corpus(corpus_bytes, seed);
  workload::ExtractConfig ec;
  ec.count = static_cast<std::uint32_t>(args.get_int("patterns"));
  ec.min_length = 6;
  ec.max_length = 16;
  ec.word_aligned = true;
  const ac::PatternSet patterns = workload::extract_patterns(
      {corpus.data() + corpus_bytes - pool_bytes, pool_bytes}, ec);

  telemetry::MetricsRegistry registry;
  dispatch::DispatchEngineOptions opt;
  opt.engine.variant = pipeline::KernelVariant::kShared;
  opt.engine.streams = 4;
  opt.engine.batch_bytes = 1u << 20;
  opt.engine.mode = gpusim::SimMode::Timed;
  opt.engine.device_memory_bytes = 1u << 30;
  opt.dispatcher.metrics = &registry;
  Result<dispatch::DispatchEngine> created =
      dispatch::DispatchEngine::create(patterns, opt);
  ACGPU_CHECK(created.is_ok(), created.status().to_string());
  dispatch::DispatchEngine& engine = created.value();

  const auto scan_seconds = [&](std::string_view text,
                                dispatch::ForcePolicy p) {
    Result<dispatch::DispatchResult> r = engine.scan_with(text, p);
    ACGPU_CHECK(r.is_ok(), r.status().to_string());
    return r.value().modeled_seconds;
  };
  constexpr dispatch::ForcePolicy kStatics[3] = {
      dispatch::ForcePolicy::kSerial,
      dispatch::ForcePolicy::kParallel,
      dispatch::ForcePolicy::kGpu,
  };

  std::vector<std::vector<std::string_view>> texts(std::size(kFams));
  for (std::size_t fi = 0; fi < std::size(kFams); ++fi) {
    const Fam& f = kFams[fi];
    const std::uint64_t span = corpus_bytes - pool_bytes - f.bytes;
    for (std::uint32_t i = 0; i < f.count; ++i)
      texts[fi].emplace_back(
          corpus.data() + (span / std::max(1u, f.count)) * i, f.bytes);
  }

  double family_min_ratio = 1e300;
  for (std::size_t fi = 0; fi < std::size(kFams); ++fi) {
    double seconds[4] = {0, 0, 0, 0};
    for (std::string_view text : texts[fi]) {
      for (int b = 0; b < 3; ++b) seconds[b] += scan_seconds(text, kStatics[b]);
      seconds[3] += scan_seconds(text, policy);
    }
    const double best_static = std::min({seconds[0], seconds[1], seconds[2]});
    family_min_ratio = std::min(
        family_min_ratio, seconds[3] > 0 ? best_static / seconds[3] : 0.0);
  }

  double mixed[4] = {0, 0, 0, 0};
  std::uint32_t max_count = 0;
  for (const Fam& f : kFams) max_count = std::max(max_count, f.count);
  for (std::uint32_t i = 0; i < max_count; ++i)
    for (std::size_t fi = 0; fi < std::size(kFams); ++fi) {
      if (i >= kFams[fi].count) continue;
      for (int b = 0; b < 3; ++b)
        mixed[b] += scan_seconds(texts[fi][i], kStatics[b]);
      mixed[3] += scan_seconds(texts[fi][i], policy);
    }
  const double mixed_best = std::min({mixed[0], mixed[1], mixed[2]});

  registry.gauge("dispatch.gate.single_family_min_ratio")
      .set(family_min_ratio);
  registry.gauge("dispatch.gate.mixed_win_ratio")
      .set(mixed[3] > 0 ? mixed_best / mixed[3] : 0.0);
  return registry.snapshot();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  ACGPU_CHECK(in.good(), "cannot read baseline file " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "check_regression: run the canonical pipeline workload, snapshot the\n"
      "metrics registry, and gate the snapshot against a checked-in baseline\n"
      "of named bounds. Exits 1 on any violation.");
  args.add_flag("mode",
                "what to gate: pipeline (canonical Engine workload), serve "
                "(streaming session service), latency (under-load tail "
                "latency through the scheduler), cluster (multi-device "
                "router tier), slo (per-shard health monitor verdicts), or "
                "dispatch (adaptive backend dispatcher routing census)",
                "pipeline");
  args.add_flag("baseline", "baseline JSON to gate against",
                "bench/baselines/telemetry_baseline.json");
  args.add_flag("serve-sessions", "mode=serve: streams to replay", "48");
  args.add_flag("cluster-devices", "mode=cluster: shard count", "4");
  args.add_flag("slo-overload",
                "mode=slo: feed this shard's sessions past quota to force an "
                "SLO breach (-1 = reference run)",
                "-1");
  args.add_flag("dispatch-force",
                "mode=dispatch: policy for the dispatched sweeps — auto, or "
                "worst (the degraded demo: ratios collapse, gate must fail)",
                "auto");
  args.add_flag("latency-batches", "mode=latency: superbatches to replay", "48");
  args.add_flag("latency-interval-us",
                "mode=latency: superbatch arrival interval (microseconds)",
                "3000");
  args.add_flag("size", "input size for the canonical workload", "8MB");
  args.add_flag("batch", "owned bytes per pipeline batch", "1MB");
  args.add_flag("streams", "pipeline streams", "4");
  args.add_flag("pool-depth", "staging-pool depth (0 = auto, 2x streams)", "0");
  args.add_flag("patterns", "dictionary size", "2000");
  args.add_flag("seed", "workload seed", "780");
  args.add_flag("snapshot", "also dump the snapshot JSON here (empty = skip)", "");
  args.add_flag("write-baseline",
                "instead of gating, re-band the gated series around this run "
                "and write the baseline here",
                "");
  args.add_flag("slack", "tolerance band for --write-baseline (fraction)", "0.05");
  args.add_bool_flag("quiet", "suppress the verdict table");
  try {
    if (!args.parse(argc, argv)) return 0;
    const std::string mode = args.get("mode");
    ACGPU_CHECK(mode == "pipeline" || mode == "serve" || mode == "latency" ||
                    mode == "cluster" || mode == "slo" || mode == "dispatch",
                "--mode must be pipeline, serve, latency, cluster, slo, or "
                "dispatch, got '" << mode << "'");
    const bool serve_mode = mode == "serve";
    const bool latency_mode = mode == "latency";
    const bool cluster_mode = mode == "cluster";
    const bool slo_mode = mode == "slo";
    const bool dispatch_mode = mode == "dispatch";

    const telemetry::MetricsSnapshot snapshot =
        serve_mode      ? run_serve_workload(args)
        : latency_mode  ? run_latency_workload(args)
        : cluster_mode  ? run_cluster_workload(args)
        : slo_mode      ? run_slo_workload(args)
        : dispatch_mode ? run_dispatch_workload(args)
                        : run_workload(args);

    const std::string snapshot_path = args.get("snapshot");
    if (!snapshot_path.empty()) {
      std::ofstream out(snapshot_path);
      ACGPU_CHECK(out.good(), "cannot write " << snapshot_path);
      snapshot.write_json(out);
    }

    const std::string write_path = args.get("write-baseline");
    if (!write_path.empty()) {
      std::ofstream out(write_path);
      ACGPU_CHECK(out.good(), "cannot write " << write_path);
      const std::vector<std::string>& gated =
          serve_mode      ? kServeGatedSeries
          : latency_mode  ? kLatencyGatedSeries
          : cluster_mode  ? kClusterGatedSeries
          : slo_mode      ? kSloGatedSeries
          : dispatch_mode ? kDispatchGatedSeries
                          : kGatedSeries;
      telemetry::write_baseline(snapshot, gated, args.get_double("slack"), out);
      std::printf("check_regression: wrote %s (re-banded %zu series)\n",
                  write_path.c_str(), gated.size());
      return 0;
    }

    const std::string baseline_path = args.get("baseline");
    Result<telemetry::RegressionBaseline> baseline =
        telemetry::parse_baseline(read_file(baseline_path));
    ACGPU_CHECK(baseline.is_ok(), baseline.status().to_string());

    const telemetry::RegressionVerdict verdict =
        telemetry::check_regression(snapshot, baseline.value());
    if (!args.get_bool("quiet"))
      telemetry::write_verdict_table(snapshot, baseline.value(), std::cout);
    if (verdict.pass()) {
      if (serve_mode)
        std::printf("check_regression: PASS (%zu checks, serve @ %lld sessions)\n",
                    verdict.checks,
                    static_cast<long long>(args.get_int("serve-sessions")));
      else if (latency_mode)
        std::printf(
            "check_regression: PASS (%zu checks, latency @ %lld superbatches "
            "every %lld us, %lld stream(s))\n",
            verdict.checks,
            static_cast<long long>(args.get_int("latency-batches")),
            static_cast<long long>(args.get_int("latency-interval-us")),
            static_cast<long long>(args.get_int("streams")));
      else if (cluster_mode)
        std::printf(
            "check_regression: PASS (%zu checks, cluster @ %lld device(s))\n",
            verdict.checks,
            static_cast<long long>(args.get_int("cluster-devices")));
      else if (slo_mode)
        std::printf(
            "check_regression: PASS (%zu checks, slo @ 4 devices, every "
            "shard ok)\n",
            verdict.checks);
      else if (dispatch_mode)
        std::printf(
            "check_regression: PASS (%zu checks, dispatch @ 3 families, "
            "force=%s)\n",
            verdict.checks, args.get("dispatch-force").c_str());
      else
        std::printf("check_regression: PASS (%zu checks, %s @ %lld stream(s))\n",
                    verdict.checks, format_bytes(args.get_bytes("size")).c_str(),
                    static_cast<long long>(args.get_int("streams")));
      return 0;
    }
    std::printf("check_regression: FAIL (%zu of %zu checks violated)\n",
                verdict.violations.size(), verdict.checks);
    for (const telemetry::RegressionViolation& v : verdict.violations)
      std::printf("  %s: %s\n", v.name.c_str(), v.detail.c_str());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "check_regression: %s\n", e.what());
    return 2;
  }
}
