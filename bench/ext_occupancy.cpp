// Extension ablation: block geometry. The paper states it stages "8~12KB of
// the 16KB shared memory" without justifying the block shape; this sweep
// shows the trade-off between staged bytes per block (fewer resident blocks,
// better amortised staging) and warp-level parallelism for latency hiding.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Extension: threads/block x chunk-size occupancy sweep.");
  args.add_flag("size", "input size", "16MB");
  args.add_flag("patterns", "dictionary size", "5000");
  if (!args.parse(argc, argv)) return 0;

  const gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  const auto size = static_cast<std::size_t>(args.get_bytes("size"));
  const auto count = static_cast<std::uint32_t>(args.get_int("patterns"));
  const std::string corpus = workload::make_corpus(size + 4 * kMiB, 779);
  const std::string_view input(corpus.data(), size);
  const std::string_view pool(corpus.data() + size, 4 * kMiB);

  workload::ExtractConfig ec;
  ec.count = count;
  ec.word_aligned = true;
  const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(pool, ec), 8);
  gpusim::DeviceMemory mem(1ull << 30);
  const kernels::DeviceDfa ddfa(mem, dfa);
  const auto addr = kernels::upload_text(mem, input);

  Table table;
  table.set_header({"threads/block", "chunk", "staged/block", "blocks/SM",
                    "warps/SM", "Gbps"});

  struct Geometry {
    std::uint32_t tpb;
    std::uint32_t chunk;
  };
  for (const Geometry g : {Geometry{64, 64}, Geometry{96, 64}, Geometry{128, 64},
                           Geometry{192, 64}, Geometry{128, 32}, Geometry{192, 32},
                           Geometry{256, 32}, Geometry{256, 48}, Geometry{384, 32}}) {
    const std::uint32_t staged = (g.tpb + 1) * g.chunk;
    if (staged > cfg.shared_mem_bytes || g.tpb > cfg.max_threads_per_sm) continue;
    kernels::AcLaunchSpec spec;
    spec.approach = kernels::Approach::kShared;
    spec.chunk_bytes = g.chunk;
    spec.threads_per_block = g.tpb;
    const std::size_t mark = mem.mark();
    const auto out = kernels::run_ac_kernel(cfg, mem, ddfa, addr, input.size(), spec);
    mem.release(mark);
    const std::uint32_t occ = cfg.occupancy_blocks(g.tpb, staged);
    table.add_row({std::to_string(g.tpb), std::to_string(g.chunk),
                   format_bytes(staged), std::to_string(occ),
                   std::to_string(occ * ((g.tpb + 31) / 32)),
                   format_gbps(to_gbps(input.size(), out.sim.seconds))});
  }

  std::printf("ext: block-geometry sweep (%s input, %u patterns)\n\n",
              format_bytes(size).c_str(), count);
  table.print(std::cout);
  std::printf("\nmore resident warps hide texture latency; bigger staged blocks "
              "amortise staging. The paper's 8-12KB choice sits near the knee.\n");
  return 0;
}
