// ext_dispatch — proves the adaptive backend dispatcher earns its keep.
//
//   ext_dispatch                         # full gate: 0.97x / 1.15x criteria
//   ext_dispatch --force gpu             # a static baseline, for comparison
//   ext_dispatch --force worst           # the anti-policy: the gate must FAIL
//   ext_dispatch --tune-cache tc --autotune --budget 4    # offline tuning
//   ext_dispatch --tune-cache tc --require-no-tunes       # cache round-trip
//
// Three single-backend-favoring scan families run through one DispatchEngine
// (pipeline/cpumodel Timed models, so every number is deterministic modeled
// seconds):
//
//   tiny   tens-of-bytes scans: every per-scan overhead (parallel fork/
//          join, GPU PCIe latency + pipeline fill) dwarfs the work —
//          serial CPU territory
//   mid    hundreds-of-bytes scans: big enough that one core's cold-cache
//          cpb loses to the fork/join price, small enough that device
//          overhead still stings — parallel-CPU territory
//   large  multi-MB scans: the batched multi-stream pipeline's regime
//
// The windows are narrow because the modeled host (2.2 GHz Core2 walking a
// cache-cold DFA) is slow and the modeled device overhead is tens of
// microseconds — exactly the paper's regime: the GPU wins everything that
// amortizes its fixed costs, so per-scan dispatch only matters at the
// small end.
//
// Every family is scanned under all three forced static policies AND under
// the cost model (auto); then a mixed sweep interleaves the families the way
// real traffic would. Acceptance criteria (exit 1 on violation):
//
//   single-family: dispatched >= 0.97x the best static backend per family
//                  (the model must find the obvious winner)
//   mixed sweep:   dispatched >= 1.15x the best SINGLE static policy
//                  (adapting per scan must beat any one-size-fits-all)
//
// --force worst runs the mixed sweep under the predicted-slowest backend per
// scan — the demo that the criteria (and check_regression --mode dispatch)
// actually bite. With --tune-cache the GPU-routed buckets consult the
// on-disk autotune cache; --require-no-tunes asserts the second run resolves
// every bucket from cache (zero re-tunes), the round-trip CI smoke.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "acgpu.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

using namespace acgpu;

namespace {

struct Family {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint32_t count = 0;
  std::vector<std::string_view> texts;
};

struct PolicyTotals {
  double seconds[4] = {0, 0, 0, 0};  // serial, parallel, gpu, dispatched
};

constexpr dispatch::Backend kStatics[3] = {
    dispatch::Backend::kSerialCpu,
    dispatch::Backend::kParallelCpu,
    dispatch::Backend::kGpuPipeline,
};

dispatch::ForcePolicy parse_policy(const std::string& name) {
  if (name == "auto") return dispatch::ForcePolicy::kAuto;
  if (name == "serial") return dispatch::ForcePolicy::kSerial;
  if (name == "parallel") return dispatch::ForcePolicy::kParallel;
  if (name == "gpu") return dispatch::ForcePolicy::kGpu;
  if (name == "worst") return dispatch::ForcePolicy::kWorst;
  ACGPU_CHECK(false, "--force must be auto, serial, parallel, gpu, or worst; "
                         "got '" << name << "'");
}

double scan_seconds(dispatch::DispatchEngine& engine, std::string_view text,
                    dispatch::ForcePolicy policy) {
  Result<dispatch::DispatchResult> r = engine.scan_with(text, policy);
  ACGPU_CHECK(r.is_ok(), r.status().to_string());
  ACGPU_CHECK(!r.value().overflowed, "dispatch scan overflowed — raise "
                                     "--match-capacity");  // Timed: never
  return r.value().modeled_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "ext_dispatch: gate the adaptive backend dispatcher against the three "
      "static policies over single-family and mixed scan workloads.\n"
      "usage: ext_dispatch [flags]");
  args.add_flag("tiny", "tiny-family scan size", "64");
  args.add_flag("tiny-count", "tiny scans per sweep", "48");
  args.add_flag("mid", "mid-family scan size", "384");
  args.add_flag("mid-count", "mid scans per sweep", "12");
  args.add_flag("large", "large-family scan size", "2MB");
  args.add_flag("large-count", "large scans per sweep", "3");
  args.add_flag("patterns", "dictionary size", "2000");
  args.add_flag("seed", "workload seed", "780");
  args.add_flag("match-capacity",
                "device match-record slots per thread (Timed mode only sizes "
                "buffers with it)",
                "64");
  args.add_flag("force",
                "policy for the 'dispatched' column: auto (default), "
                "serial, parallel, gpu, or worst (the WILL_FAIL demo)",
                "auto");
  args.add_flag("family-threshold",
                "min dispatched/best-static ratio per family", "0.97");
  args.add_flag("mixed-threshold",
                "min dispatched/best-single-static ratio on the mixed sweep",
                "1.15");
  args.add_flag("tune-cache",
                "autotune cache path (empty = no persistence)", "");
  args.add_bool_flag("autotune",
                     "tune GPU-routed buckets with no cached winner");
  args.add_flag("budget", "autotune candidate configs per bucket", "12");
  args.add_flag("probe", "autotune probe text bytes", "1MB");
  args.add_bool_flag("require-no-tunes",
                     "fail unless every bucket resolved from the tune cache "
                     "(the round-trip smoke)");
  args.add_flag("json", "output path for the BENCH json artifact",
                "BENCH_dispatch.json");
  args.add_bool_flag("no-gate", "report only; skip the acceptance criteria");
  args.add_bool_flag("quiet", "suppress the per-family table");

  try {
    if (!args.parse(argc, argv)) return 0;
    const dispatch::ForcePolicy policy = parse_policy(args.get("force"));

    std::vector<Family> families = {
        {"tiny", static_cast<std::uint64_t>(args.get_bytes("tiny")),
         static_cast<std::uint32_t>(args.get_int("tiny-count")),
         {}},
        {"mid", static_cast<std::uint64_t>(args.get_bytes("mid")),
         static_cast<std::uint32_t>(args.get_int("mid-count")),
         {}},
        {"large", static_cast<std::uint64_t>(args.get_bytes("large")),
         static_cast<std::uint32_t>(args.get_int("large-count")),
         {}},
    };

    // One corpus serves every family: scan i of a family reads at a rotated
    // offset so the texts differ without another generator pass.
    std::uint64_t max_bytes = 0;
    for (const Family& f : families)
      max_bytes = std::max(max_bytes, f.bytes);
    const std::uint64_t pool_bytes = 4u << 20;
    const std::uint64_t corpus_bytes = 2 * max_bytes + pool_bytes;
    const std::string corpus = workload::make_corpus(
        corpus_bytes, static_cast<std::uint64_t>(args.get_int("seed")));
    workload::ExtractConfig ec;
    ec.count = static_cast<std::uint32_t>(args.get_int("patterns"));
    ec.min_length = 6;
    ec.max_length = 16;
    ec.word_aligned = true;
    const ac::PatternSet patterns = workload::extract_patterns(
        {corpus.data() + corpus_bytes - pool_bytes, pool_bytes}, ec);

    for (Family& f : families) {
      const std::uint64_t span = corpus_bytes - pool_bytes - f.bytes;
      for (std::uint32_t i = 0; i < f.count; ++i) {
        const std::uint64_t offset = (span / std::max(1u, f.count)) * i;
        f.texts.emplace_back(corpus.data() + offset, f.bytes);
      }
    }

    telemetry::MetricsRegistry registry;
    dispatch::DispatchEngineOptions opt;
    opt.engine.variant = pipeline::KernelVariant::kShared;
    opt.engine.streams = 4;
    opt.engine.batch_bytes = 1u << 20;
    opt.engine.mode = gpusim::SimMode::Timed;
    opt.engine.device_memory_bytes = 1u << 30;
    opt.engine.match_capacity =
        static_cast<std::uint32_t>(args.get_int("match-capacity"));
    opt.dispatcher.metrics = &registry;
    opt.tune_cache_path = args.get("tune-cache");
    opt.autotune_on_miss = args.get_bool("autotune");
    opt.tune_budget.max_configs =
        static_cast<std::uint32_t>(args.get_int("budget"));
    opt.tune_budget.probe_bytes =
        static_cast<std::uint64_t>(args.get_bytes("probe"));

    Result<dispatch::DispatchEngine> created =
        dispatch::DispatchEngine::create(patterns, opt);
    ACGPU_CHECK(created.is_ok(), created.status().to_string());
    dispatch::DispatchEngine& engine = created.value();

    // --- single-family sweeps ---------------------------------------------
    Table table;
    table.set_header({"family", "size", "scans", "serial", "parallel", "gpu",
                      "dispatched", "vs best static"});
    double family_min_ratio = 1e300;
    std::vector<PolicyTotals> totals(families.size());
    for (std::size_t fi = 0; fi < families.size(); ++fi) {
      const Family& f = families[fi];
      PolicyTotals& t = totals[fi];
      for (std::string_view text : f.texts) {
        for (int b = 0; b < 3; ++b)
          t.seconds[b] += scan_seconds(
              engine, text,
              b == 0   ? dispatch::ForcePolicy::kSerial
              : b == 1 ? dispatch::ForcePolicy::kParallel
                       : dispatch::ForcePolicy::kGpu);
        t.seconds[3] += scan_seconds(engine, text, policy);
      }
      const double best_static =
          std::min({t.seconds[0], t.seconds[1], t.seconds[2]});
      const double ratio =
          t.seconds[3] > 0 ? best_static / t.seconds[3] : 0.0;
      family_min_ratio = std::min(family_min_ratio, ratio);
      char ratio_s[16];
      std::snprintf(ratio_s, sizeof ratio_s, "%.3fx", ratio);
      table.add_row({f.name, format_bytes(f.bytes), std::to_string(f.count),
                     format_seconds(t.seconds[0]),
                     format_seconds(t.seconds[1]),
                     format_seconds(t.seconds[2]),
                     format_seconds(t.seconds[3]), ratio_s});
    }

    // --- mixed sweep -------------------------------------------------------
    // Interleave the families round-robin, the shape of real traffic: many
    // tiny scans between every mid, a large one now and then. Each static
    // policy replays the identical sequence.
    std::vector<std::string_view> mixed;
    std::uint32_t max_count = 0;
    for (const Family& f : families)
      max_count = std::max(max_count, f.count);
    for (std::uint32_t i = 0; i < max_count; ++i)
      for (const Family& f : families)
        if (i < f.count) mixed.push_back(f.texts[i]);

    PolicyTotals mixed_t;
    for (std::string_view text : mixed) {
      for (int b = 0; b < 3; ++b)
        mixed_t.seconds[b] += scan_seconds(
            engine, text,
            b == 0   ? dispatch::ForcePolicy::kSerial
            : b == 1 ? dispatch::ForcePolicy::kParallel
                     : dispatch::ForcePolicy::kGpu);
      mixed_t.seconds[3] += scan_seconds(engine, text, policy);
    }
    const double mixed_best_static = std::min(
        {mixed_t.seconds[0], mixed_t.seconds[1], mixed_t.seconds[2]});
    const double mixed_ratio = mixed_t.seconds[3] > 0
                                   ? mixed_best_static / mixed_t.seconds[3]
                                   : 0.0;

    const dispatch::DispatchStats stats = engine.dispatcher().stats();
    if (!args.get_bool("quiet")) {
      table.add_row({"mixed", "-", std::to_string(mixed.size()),
                     format_seconds(mixed_t.seconds[0]),
                     format_seconds(mixed_t.seconds[1]),
                     format_seconds(mixed_t.seconds[2]),
                     format_seconds(mixed_t.seconds[3]),
                     [&] {
                       char s[16];
                       std::snprintf(s, sizeof s, "%.3fx", mixed_ratio);
                       return std::string(s);
                     }()});
      table.print(std::cout);
      std::printf("\n");
    }
    std::printf(
        "dispatch: single-family min ratio %.3f (need >= %.2f), mixed win "
        "%.3fx (need >= %.2fx)\n",
        family_min_ratio, args.get_double("family-threshold"), mixed_ratio,
        args.get_double("mixed-threshold"));
    std::printf(
        "decisions: serial %llu, parallel %llu, gpu %llu; mispredictions "
        "%llu; tune cache: %llu hit(s), %llu miss(es), %llu tune(s)\n",
        static_cast<unsigned long long>(stats.decisions[0]),
        static_cast<unsigned long long>(stats.decisions[1]),
        static_cast<unsigned long long>(stats.decisions[2]),
        static_cast<unsigned long long>(stats.mispredictions),
        static_cast<unsigned long long>(stats.tune_cache_hits),
        static_cast<unsigned long long>(stats.tune_cache_misses),
        static_cast<unsigned long long>(stats.tunes));

    if (!args.get("tune-cache").empty()) {
      const Status saved = engine.save_tune_cache();
      ACGPU_CHECK(saved.is_ok(), saved.to_string());
      std::printf("tune cache: %zu entr%s at %s\n", engine.tune_cache().size(),
                  engine.tune_cache().size() == 1 ? "y" : "ies",
                  args.get("tune-cache").c_str());
    }

    const std::string json_path = args.get("json");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      ACGPU_CHECK(out.good(), "cannot write " << json_path);
      out << "{\"bench\":\"dispatch\",\"force\":\"" << args.get("force")
          << "\",\"families\":[";
      for (std::size_t fi = 0; fi < families.size(); ++fi) {
        const Family& f = families[fi];
        const PolicyTotals& t = totals[fi];
        out << (fi == 0 ? "" : ",") << "{\"name\":\"" << f.name
            << "\",\"bytes\":" << f.bytes << ",\"count\":" << f.count
            << ",\"serial_seconds\":" << t.seconds[0]
            << ",\"parallel_seconds\":" << t.seconds[1]
            << ",\"gpu_seconds\":" << t.seconds[2]
            << ",\"dispatched_seconds\":" << t.seconds[3] << "}";
      }
      out << "],\"mixed\":{\"scans\":" << mixed.size()
          << ",\"serial_seconds\":" << mixed_t.seconds[0]
          << ",\"parallel_seconds\":" << mixed_t.seconds[1]
          << ",\"gpu_seconds\":" << mixed_t.seconds[2]
          << ",\"dispatched_seconds\":" << mixed_t.seconds[3]
          << ",\"win_ratio\":" << mixed_ratio << "}"
          << ",\"single_family_min_ratio\":" << family_min_ratio
          << ",\"decisions\":{\"serial\":" << stats.decisions[0]
          << ",\"parallel\":" << stats.decisions[1]
          << ",\"gpu\":" << stats.decisions[2] << "}"
          << ",\"mispredictions\":" << stats.mispredictions
          << ",\"tune_cache\":{\"hits\":" << stats.tune_cache_hits
          << ",\"misses\":" << stats.tune_cache_misses
          << ",\"tunes\":" << stats.tunes << "}}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }

    if (args.get_bool("require-no-tunes") && stats.tunes > 0) {
      std::fprintf(stderr,
                   "ext_dispatch: FAIL — %llu bucket(s) re-tuned; the cache "
                   "round-trip requires every winner to come from disk\n",
                   static_cast<unsigned long long>(stats.tunes));
      return 1;
    }
    if (!args.get_bool("no-gate")) {
      const double family_threshold = args.get_double("family-threshold");
      const double mixed_threshold = args.get_double("mixed-threshold");
      if (family_min_ratio < family_threshold ||
          mixed_ratio < mixed_threshold) {
        std::fprintf(stderr,
                     "ext_dispatch: FAIL (single-family %.3f vs %.2f, mixed "
                     "%.3fx vs %.2fx)\n",
                     family_min_ratio, family_threshold, mixed_ratio,
                     mixed_threshold);
        return 1;
      }
    }
    std::puts("ext_dispatch: PASS");
  } catch (const Error& e) {
    std::fprintf(stderr, "ext_dispatch: %s\n", e.what());
    return 2;
  }
  return 0;
}
