// Extension beyond the paper: multi-device scaling, measured through the
// real scatter/gather tier (src/cluster/) rather than modeled analytically.
// Sweeps device counts over one corpus and dictionary: the Router
// slab-partitions the text across N independent simulated devices (each its
// own DMA engines, streams, and automaton upload), and the cluster makespan
// is the max over the per-device simulated makespans — the multi-GPU
// equivalent of the related work's MPI-sharded deployments. Emits the
// BENCH_cluster.json artifact.
//
// Exit status: 0 when the >= 64 MB acceptance regime passes the scaling
// criterion — >= 3.0x speedup at 4 devices vs 1 device on the same input —
// (or the input is below that regime, or the sweep lacks the 1- and
// 4-device points), 1 otherwise.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "acgpu.h"
#include "cluster/router.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

using namespace acgpu;

namespace {

// Parses a comma-separated list of small unsigned integers ("1,2,4,8").
// Returns false (leaving `out` untouched) on any malformed element.
bool parse_u32_list(const std::string& text, std::vector<std::uint32_t>* out) {
  std::vector<std::uint32_t> values;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string item = text.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (item.empty()) return false;
    std::uint32_t value = 0;
    for (const char c : item) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<std::uint32_t>(c - '0');
    }
    values.push_back(value);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (values.empty()) return false;
  *out = std::move(values);
  return true;
}

struct ClusterPoint {
  std::uint32_t devices = 0;
  cluster::ClusterScanResult scan;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Extension: multi-device scaling through the cluster scatter/gather\n"
      "tier — one input slab-partitioned across N simulated devices.");
  args.add_flag("size", "input size", "64MB");
  args.add_flag("patterns", "dictionary size (extracted from the corpus)",
                "8000");
  args.add_flag("devices", "comma-separated device counts to sweep", "1,2,4,8");
  args.add_flag("batch", "owned bytes per pipeline batch (ceiling)", "4MB");
  args.add_flag("streams", "pipeline streams per device", "4");
  args.add_flag("seed", "corpus/dictionary seed", "780");
  args.add_flag("json", "output path for the BENCH json artifact",
                "BENCH_cluster.json");
  args.add_bool_flag("quiet", "suppress progress output");
  if (!args.parse(argc, argv)) return 0;

  const std::uint64_t text_bytes = args.get_bytes("size");
  const auto pattern_count = static_cast<std::uint32_t>(args.get_int("patterns"));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
  std::vector<std::uint32_t> device_counts;
  if (!parse_u32_list(args.get("devices"), &device_counts)) {
    std::fprintf(stderr,
                 "ext_cluster: --devices wants comma-separated integers, "
                 "e.g. --devices 1,2,4,8\n");
    return 1;
  }

  // Same corpus/dictionary methodology as the pipeline sweep: patterns are
  // word-aligned substrings of a pattern pool appended to the scanned text.
  constexpr std::uint64_t kPoolBytes = 4ull << 20;
  const std::string corpus = workload::make_corpus(text_bytes + kPoolBytes, seed);
  const std::string_view input(corpus.data(), text_bytes);
  workload::ExtractConfig ec;
  ec.count = pattern_count;
  ec.min_length = 6;
  ec.max_length = 16;
  ec.word_aligned = true;
  const ac::PatternSet patterns = workload::extract_patterns(
      std::string_view(corpus.data() + text_bytes, kPoolBytes), ec);

  std::printf("ext: multi-device cluster scaling (%s input, %u patterns, %s "
              "batches)\n\n",
              format_bytes(text_bytes).c_str(), pattern_count,
              format_bytes(args.get_bytes("batch")).c_str());

  const bool quiet = args.get_bool("quiet");
  std::vector<ClusterPoint> points;
  for (const std::uint32_t devices : device_counts) {
    cluster::ClusterOptions opt;
    opt.devices = devices;
    // Timed mode: per-device simulated makespans, no match collection — the
    // same regime every throughput figure measures in. GTX 285 geometry.
    opt.engine.mode = gpusim::SimMode::Timed;
    opt.engine.variant = pipeline::KernelVariant::kShared;
    opt.engine.chunk_bytes = 64;
    opt.engine.threads_per_block = 192;
    opt.engine.streams = static_cast<std::uint32_t>(args.get_int("streams"));
    opt.engine.batch_bytes = args.get_bytes("batch");
    opt.engine.device_memory_bytes = 1ull << 30;  // GTX 285: 1 GB per device

    auto router = cluster::Router::create(patterns, opt);
    ACGPU_CHECK(router.is_ok(), router.status().to_string());
    auto scan = router.value().scan(input);
    ACGPU_CHECK(scan.is_ok(), scan.status().to_string());

    ClusterPoint point;
    point.devices = devices;
    point.scan = std::move(scan).value();
    if (!quiet)
      std::printf("  %u device(s): makespan %s, %s\n", devices,
                  format_seconds(point.scan.makespan_seconds).c_str(),
                  format_gbps(point.scan.throughput_gbps()).c_str());
    points.push_back(std::move(point));
  }

  const auto makespan_of = [&](std::uint32_t devices) {
    for (const ClusterPoint& p : points)
      if (p.devices == devices) return p.scan.makespan_seconds;
    return 0.0;
  };
  const double base = makespan_of(1);
  const auto speedup_of = [&](std::uint32_t devices) {
    const double t = makespan_of(devices);
    return base > 0 && t > 0 ? base / t : 0.0;
  };

  Table table;
  table.set_header({"devices", "slab", "makespan", "Gbps", "vs 1 device"});
  for (const ClusterPoint& p : points) {
    char speedup[16];
    std::snprintf(speedup, sizeof speedup, "%.2fx", speedup_of(p.devices));
    const std::uint64_t slab =
        (p.scan.input_bytes + p.devices - 1) / p.devices;
    table.add_row({std::to_string(p.devices), format_bytes(slab),
                   format_seconds(p.scan.makespan_seconds),
                   format_gbps(p.scan.throughput_gbps()),
                   base > 0 ? speedup : "n/a"});
  }
  std::printf("\n");
  table.print(std::cout);

  const double speedup_4_vs_1 = speedup_of(4);
  const bool in_regime = text_bytes >= (64ull << 20) && base > 0 &&
                         makespan_of(4) > 0;

  const std::string json_path = args.get("json");
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "ext_cluster: cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\"bench\":\"cluster\"";
  json << ",\"text_bytes\":" << text_bytes;
  json << ",\"pattern_count\":" << pattern_count;
  json << ",\"batch_bytes\":" << args.get_bytes("batch");
  json << ",\"streams\":" << args.get_int("streams");
  json << ",\"seed\":" << seed;
  json << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ClusterPoint& p = points[i];
    if (i > 0) json << ",";
    json << "{\"devices\":" << p.devices;
    json << ",\"devices_used\":" << p.scan.devices_used;
    json << ",\"input_bytes\":" << p.scan.input_bytes;
    json << ",\"makespan_seconds\":" << p.scan.makespan_seconds;
    json << ",\"throughput_gbps\":" << p.scan.throughput_gbps();
    json << ",\"speedup_vs_1\":" << speedup_of(p.devices);
    json << ",\"per_device_seconds\":[";
    for (std::size_t d = 0; d < p.scan.per_device_seconds.size(); ++d) {
      if (d > 0) json << ",";
      json << p.scan.per_device_seconds[d];
    }
    json << "]}";
  }
  json << "]";
  json << ",\"criterion\":{\"required_speedup_4_vs_1\":3.0";
  json << ",\"speedup_4_vs_1\":" << speedup_4_vs_1;
  json << ",\"in_regime\":" << (in_regime ? "true" : "false");
  json << ",\"pass\":" << (!in_regime || speedup_4_vs_1 >= 3.0 ? "true" : "false");
  json << "}}\n";
  std::printf("\nwrote %s\n", json_path.c_str());

  std::printf("speedup at 4 devices vs 1: %.2fx\n", speedup_4_vs_1);
  std::printf("each device scans its own slab through its own copy engines "
              "and streams; the cluster makespan is the slowest slab, so "
              "scaling approaches W until the per-slab pipeline fill and the "
              "seam overlap bytes dominate.\n");

  // The acceptance gate applies in its stated regime (>= 64 MB input, with
  // both the 1- and 4-device points present in the sweep).
  if (in_regime && speedup_4_vs_1 < 3.0) {
    std::fprintf(stderr,
                 "ext_cluster: scaling criterion failed — %.2fx at 4 devices "
                 "vs 1 (need >= 3.0x)\n",
                 speedup_4_vs_1);
    return 1;
  }
  return 0;
}
