#!/usr/bin/env bash
# Builds the host-parallel matchers under ThreadSanitizer and runs everything
# that exercises real threads: the parallel/stream matcher test suites plus a
# conformance sweep (whose chunked-parallel adapter fans work out across a
# thread pool). Any perf PR touching ac/parallel_matcher.* or the stream
# matcher should pass this first:
#
#   bench/run_parallel_tsan.sh                           # default sweep
#   ITERATIONS=200 SEED=42 bench/run_parallel_tsan.sh    # pre-merge gate
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACGPU_TSAN=ON
cmake --build "${BUILD}" -j "$(nproc)" --target acgpu_ac_tests ac_conformance

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

"${BUILD}/tests/acgpu_ac_tests" --gtest_filter='ParallelMatcher.*:StreamMatcher.*'

"${BUILD}/examples/ac_conformance" \
  --iterations "${ITERATIONS:-50}" --seed "${SEED:-1}"

echo "run_parallel_tsan: clean"
