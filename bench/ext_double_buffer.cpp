// Extension beyond the paper: double-buffered staging. Each block owns
// several tiles and stages tile k+1 with asynchronous loads while matching
// tile k out of the other half of the shared region. Evaluated in the
// regime it targets — one resident block per SM.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Extension: synchronous staging vs double-buffered prefetch.");
  args.add_flag("size", "input size", "16MB");
  if (!args.parse(argc, argv)) return 0;

  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.max_blocks_per_sm = 1;  // the single-resident-block regime
  const auto size = static_cast<std::size_t>(args.get_bytes("size"));
  const std::string corpus = workload::make_corpus(size + 4 * kMiB, 780);
  const std::string_view input(corpus.data(), size);
  const std::string_view pool(corpus.data() + size, 4 * kMiB);

  Table table;
  table.set_header({"patterns", "tiles/block", "Gbps", "vs plain"});

  for (std::uint32_t count : {100u, 5000u}) {
    workload::ExtractConfig ec;
    ec.count = count;
    ec.word_aligned = true;
    const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(pool, ec), 8);
    gpusim::DeviceMemory mem(1ull << 30);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const auto addr = kernels::upload_text(mem, input);

    double plain_seconds = 0;
    for (std::uint32_t tiles : {1u, 2u, 4u, 8u}) {
      kernels::AcLaunchSpec spec;
      spec.approach = kernels::Approach::kShared;
      spec.chunk_bytes = 32;
      spec.threads_per_block = 192;
      spec.tiles_per_block = tiles;
      const std::size_t mark = mem.mark();
      const auto out = kernels::run_ac_kernel(cfg, mem, ddfa, addr, input.size(), spec);
      mem.release(mark);
      if (tiles == 1) plain_seconds = out.sim.seconds;
      char ratio[16];
      std::snprintf(ratio, sizeof ratio, "%.2fx", plain_seconds / out.sim.seconds);
      table.add_row({std::to_string(count), std::to_string(tiles),
                     format_gbps(to_gbps(input.size(), out.sim.seconds)), ratio});
    }
  }

  std::printf("ext: double-buffered staging (%s input, one resident block/SM)\n\n",
              format_bytes(size).c_str());
  table.print(std::cout);
  std::printf("\nprefetching the next tile hides its staging latency behind the "
              "current tile's matching; the benefit shrinks as texture stalls "
              "start dominating (high pattern counts).\n");
  return 0;
}
