// Extension beyond the paper: staged transfer/compute overlap, measured
// through the real batched multi-stream pipeline (src/pipeline/) rather than
// modeled analytically. Sweeps stream counts x staging-pool depths against
// the single-buffer baseline (whole input staged, one monolithic kernel,
// copy back — nothing overlapped) and emits the BENCH_pipeline.json
// artifact.
//
// Exit status: 0 when the >= 64 MB acceptance regime passes the plateau
// criterion — >= 2.0x speedup at streams >= 4, streams=4 strictly faster
// than streams=2, max queue depth > 2 — (or the input is below that
// regime), 1 otherwise.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "acgpu.h"
#include "harness/pipeline_experiment.h"

using namespace acgpu;

namespace {

// Parses a comma-separated list of small unsigned integers ("1,2,4,8").
// Returns false (leaving `out` untouched) on any malformed element.
bool parse_u32_list(const std::string& text, std::vector<std::uint32_t>* out) {
  std::vector<std::uint32_t> values;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string item = text.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (item.empty()) return false;
    std::uint32_t value = 0;
    for (const char c : item) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<std::uint32_t>(c - '0');
    }
    values.push_back(value);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (values.empty()) return false;
  *out = std::move(values);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Extension: transfer/compute overlap through the batched multi-stream\n"
      "pipeline, vs the single-buffer shared-memory path.");
  args.add_flag("size", "input size", "64MB");
  args.add_flag("batch", "owned bytes per pipeline batch (ceiling)", "4MB");
  args.add_flag("streams", "comma-separated stream counts to sweep", "1,2,4,8");
  args.add_flag("depths", "comma-separated staging-pool depths (0 = auto)",
                "0,2,8");
  args.add_flag("json", "output path for the BENCH json artifact",
                "BENCH_pipeline.json");
  args.add_bool_flag("quiet", "suppress progress output");
  if (!args.parse(argc, argv)) return 0;

  harness::PipelineSweepConfig config;
  config.text_bytes = static_cast<std::uint64_t>(args.get_bytes("size"));
  config.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));
  if (!parse_u32_list(args.get("streams"), &config.stream_counts) ||
      !parse_u32_list(args.get("depths"), &config.pool_depths)) {
    std::fprintf(stderr,
                 "ext_double_buffer: --streams/--depths want comma-separated "
                 "integers, e.g. --streams 1,2,4,8 --depths 0,2,8\n");
    return 1;
  }

  std::printf("ext: pipeline transfer/compute overlap (%s input, %s batches)\n\n",
              format_bytes(config.text_bytes).c_str(),
              format_bytes(config.batch_bytes).c_str());
  const harness::PipelineSweepResult result = harness::run_pipeline_sweep(
      config, args.get_bool("quiet") ? nullptr : &std::cout);

  Table table;
  table.set_header({"patterns", "streams", "depth", "batches", "Gbps",
                    "overlap", "p99 latency", "vs single-buffer"});
  for (const harness::PipelinePoint& p : result.points) {
    char overlap[16], speedup[16];
    std::snprintf(overlap, sizeof overlap, "%.0f%%", p.stats.overlap_ratio * 100);
    std::snprintf(speedup, sizeof speedup, "%.2fx", p.speedup_vs_single_buffer());
    const std::string depth =
        p.pool_depth_request == 0
            ? "auto(" + std::to_string(p.stats.pool_depth) + ")"
            : std::to_string(p.stats.pool_depth);
    table.add_row({std::to_string(p.pattern_count), std::to_string(p.streams),
                   depth, std::to_string(p.stats.batches),
                   format_gbps(p.throughput_gbps()), overlap,
                   format_seconds(p.stats.latency_p99_seconds), speedup});
  }
  std::printf("\n");
  table.print(std::cout);

  const std::string json_path = args.get("json");
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "ext_double_buffer: cannot write %s\n", json_path.c_str());
    return 1;
  }
  harness::write_pipeline_json(result, json);
  std::printf("\nwrote %s\n", json_path.c_str());

  std::printf("best multi-stream speedup vs single-buffer: %.2fx\n",
              result.best_multi_stream_speedup());
  std::printf("best deep-stream (>= 4) speedup at largest dictionary: %.2fx\n",
              result.best_deep_stream_speedup());
  std::printf("with a staging pool deeper than 2 and a split readback stage, "
              "uploads, kernels, and readbacks of different batches run "
              "concurrently; the end-to-end win approaches "
              "serial(copy+compute) / max(h2d, compute, d2h).\n");

  // The acceptance gate applies in its stated regime (>= 64 MB input).
  if (config.text_bytes >= (64ull << 20) && !result.criterion_pass()) {
    std::fprintf(stderr,
                 "ext_double_buffer: plateau criterion failed — deep-stream "
                 "speedup %.2fx (need >= 2.0x), streams4_vs_2_distinct=%s, "
                 "max_queue_depth=%llu (need > 2)\n",
                 result.best_deep_stream_speedup(),
                 result.streams4_vs_2_distinct() ? "true" : "false",
                 static_cast<unsigned long long>(result.max_queue_depth()));
    return 1;
  }
  return 0;
}
