// Extension beyond the paper: double-buffered transfer/compute overlap,
// measured through the real batched multi-stream pipeline (src/pipeline/)
// rather than modeled analytically. Sweeps stream counts against the
// single-buffer baseline (whole input staged, one monolithic kernel, copy
// back — nothing overlapped) and emits the BENCH_pipeline.json artifact.
//
// Exit status: 0 when the >= 64 MB acceptance regime achieves the >= 1.5x
// multi-stream speedup (or the input is below that regime), 1 otherwise.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "acgpu.h"
#include "harness/pipeline_experiment.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args(
      "Extension: transfer/compute overlap through the batched multi-stream\n"
      "pipeline, vs the single-buffer shared-memory path.");
  args.add_flag("size", "input size", "64MB");
  args.add_flag("batch", "owned bytes per pipeline batch", "4MB");
  args.add_flag("json", "output path for the BENCH json artifact",
                "BENCH_pipeline.json");
  args.add_bool_flag("quiet", "suppress progress output");
  if (!args.parse(argc, argv)) return 0;

  harness::PipelineSweepConfig config;
  config.text_bytes = static_cast<std::uint64_t>(args.get_bytes("size"));
  config.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));

  std::printf("ext: pipeline transfer/compute overlap (%s input, %s batches)\n\n",
              format_bytes(config.text_bytes).c_str(),
              format_bytes(config.batch_bytes).c_str());
  const harness::PipelineSweepResult result = harness::run_pipeline_sweep(
      config, args.get_bool("quiet") ? nullptr : &std::cout);

  Table table;
  table.set_header({"patterns", "streams", "batches", "Gbps", "overlap",
                    "p99 latency", "vs single-buffer"});
  for (const harness::PipelinePoint& p : result.points) {
    char overlap[16], speedup[16];
    std::snprintf(overlap, sizeof overlap, "%.0f%%", p.stats.overlap_ratio * 100);
    std::snprintf(speedup, sizeof speedup, "%.2fx", p.speedup_vs_single_buffer());
    table.add_row({std::to_string(p.pattern_count), std::to_string(p.streams),
                   std::to_string(p.stats.batches),
                   format_gbps(p.throughput_gbps()), overlap,
                   format_seconds(p.stats.latency_p99_seconds), speedup});
  }
  std::printf("\n");
  table.print(std::cout);

  const std::string json_path = args.get("json");
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "ext_double_buffer: cannot write %s\n", json_path.c_str());
    return 1;
  }
  harness::write_pipeline_json(result, json);
  std::printf("\nwrote %s\n", json_path.c_str());

  const double best = result.best_multi_stream_speedup();
  std::printf("best multi-stream speedup vs single-buffer: %.2fx\n", best);
  std::printf("with >= 2 streams the copy engine stages batch k+1 while the "
              "compute engine matches batch k; the end-to-end win approaches "
              "serial(copy+compute) / max(copy, compute).\n");

  // The acceptance gate applies in its stated regime (>= 64 MB input).
  if (config.text_bytes >= (64ull << 20) && best < 1.5) {
    std::fprintf(stderr,
                 "ext_double_buffer: multi-stream speedup %.2fx below the "
                 "1.5x acceptance threshold\n",
                 best);
    return 1;
  }
  return 0;
}
