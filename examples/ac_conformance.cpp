// ac_conformance — differential conformance harness over every matcher
// variant in the library:
//
//   ac_conformance                                  # all matchers, 100 workloads
//   ac_conformance --iterations 500 --seed 42       # the pre-merge gate
//   ac_conformance --matchers=stream,gpu-shared     # focus two variants
//   ac_conformance --minimize                       # shrink any divergence to a
//                                                   # ready-to-paste C++ test
//   ac_conformance --list                           # registered matcher names
//
// Exit status: 0 when every matcher agreed on every workload, 1 when any
// divergence was found (details and reproducers on stdout), 2 on bad usage.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "oracle/conformance.h"
#include "oracle/workload_gen.h"
#include "util/arg_parser.h"
#include "util/byte_units.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace acgpu;

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ','))
    if (!token.empty()) names.push_back(token);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Differential conformance harness: runs seeded workloads across every\n"
      "registered matcher and diffs the match multisets against the serial\n"
      "DFA reference.\n"
      "usage: ac_conformance [flags]");
  args.add_flag("seed", "workload generator seed", "42");
  args.add_flag("iterations", "number of generated workloads", "100");
  args.add_flag("matchers", "comma-separated matcher names (empty = all)", "");
  args.add_bool_flag("minimize", "shrink divergences to minimal reproducers");
  args.add_bool_flag("list", "print registered matcher names and exit");
  args.add_bool_flag("quiet", "suppress progress output");
  try {
    if (!args.parse(argc, argv)) return 0;
    if (args.get_bool("list")) {
      for (const auto& name : oracle::registered_matcher_names())
        std::printf("%s\n", name.c_str());
      return 0;
    }

    oracle::ConformanceOptions options;
    options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    options.iterations = static_cast<std::uint64_t>(args.get_int("iterations"));
    options.matchers = split_names(args.get("matchers"));
    options.minimize = args.get_bool("minimize");
    options.log = args.get_bool("quiet") ? nullptr : &std::cout;

    // Validate matcher names up front so a typo fails before any output.
    const std::size_t matcher_count = oracle::make_matchers(options.matchers).size();
    std::printf("conformance: %llu workloads (%zu families) x %zu matchers, seed %llu\n",
                static_cast<unsigned long long>(options.iterations),
                oracle::workload_family_count(), matcher_count,
                static_cast<unsigned long long>(options.seed));

    Stopwatch clock;
    const oracle::ConformanceResult result = oracle::run_conformance(options);

    Table table;
    table.set_header({"workloads", "comparisons", "ref matches", "divergences",
                      "failures", "time"});
    table.add_row({std::to_string(result.iterations),
                   std::to_string(result.comparisons),
                   std::to_string(result.reference_matches),
                   std::to_string(result.divergences.size()),
                   std::to_string(result.failures.size()),
                   format_seconds(clock.seconds())});
    table.print(std::cout);

    if (!result.ok()) {
      if (!result.failures.empty()) {
        std::printf("\n%zu matcher failure(s):\n", result.failures.size());
        for (const auto& f : result.failures)
          std::printf("  %s\n", oracle::describe(f).c_str());
      }
      if (!result.divergences.empty()) {
        std::printf("\n%zu divergence(s):\n", result.divergences.size());
        for (const auto& d : result.divergences)
          std::printf("  %s\n", oracle::describe(d).c_str());
      }
      for (const auto& r : result.reproducers)
        std::printf("\n%s", oracle::to_cpp_test(r).c_str());
      return 1;
    }
    std::printf("all matchers conform.\n");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ac_conformance: %s\n", e.what());
    return 2;
  }
}
