// acgpu_cluster — the multi-device sharding demo: session traffic and bulk
// scans routed across N simulated devices, with a device failure survived
// mid-replay.
//
//   acgpu_cluster                              # 4 devices, defaults
//   acgpu_cluster --devices 8 --sessions 64 --background
//   acgpu_cluster --no-fail --stats
//   acgpu_cluster --trace fleet.json           # Perfetto fleet trace
//   acgpu_cluster --postmortem crash.json      # black box on the failure
//
// Each simulated client streams its own seeded corpus through the
// cluster::Router, which homes every session on the least-loaded healthy
// shard. Halfway through the replay one device is fail-stopped: its queued
// work drains through the exact host fallback and its sessions migrate —
// state, quotas, and unpolled matches intact — onto the survivors. After
// the replay every session is checked against a serial host scan of its own
// stream, so the demo doubles as a zero-loss rebalance proof. A bulk
// scatter/gather scan over one large input then shows the other traffic
// path: slab partitioning, seam-exact merging, and the per-device makespans
// behind the cluster's scaling claim (bench/ext_cluster.cpp).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "acgpu.h"

using namespace acgpu;

namespace {

std::string make_stream(std::uint64_t seed, std::size_t session,
                        std::size_t bytes) {
  Rng rng(derive_seed(seed, session));
  std::string text(bytes, '\0');
  for (char& c : text) c = "hershise ab"[rng.next_below(11)];
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "acgpu_cluster: shard session traffic and bulk scans across N "
      "simulated devices, failing one mid-replay.\n"
      "usage: acgpu_cluster [flags]");
  args.add_flag("devices", "shard count (independent simulated devices)", "4");
  args.add_flag("sessions", "concurrent sessions to replay", "16");
  args.add_flag("bytes", "stream bytes per session", "16KB");
  args.add_flag("chunk", "feed size per chunk", "512");
  args.add_flag("scan", "bulk scatter/gather input size (0 skips)", "4MB");
  args.add_flag("seed", "corpus seed", "42");
  args.add_bool_flag("background", "every shard pumps on its own thread");
  args.add_bool_flag("no-fail", "skip the mid-replay device failure");
  args.add_bool_flag("stats", "print the router.* / device.*.* metrics table");
  args.add_flag("trace",
                "write the joined fleet Chrome trace here (empty = off)", "");
  args.add_flag("postmortem",
                "arm the flight recorder; the mid-replay failure dumps its "
                "black box here (empty = off)",
                "");
  args.add_bool_flag("slo", "enable the serving-default SLO health monitor");

  try {
    if (!args.parse(argc, argv)) return 0;
    const auto devices = static_cast<std::uint32_t>(args.get_int("devices"));
    const auto sessions = static_cast<std::size_t>(args.get_int("sessions"));
    const auto stream_bytes = static_cast<std::size_t>(args.get_bytes("bytes"));
    const auto chunk = static_cast<std::size_t>(args.get_int("chunk"));
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
    ACGPU_CHECK(sessions > 0 && chunk > 0, "--sessions and --chunk must be >= 1");
    const bool fail = !args.get_bool("no-fail") && devices > 1;

    telemetry::MetricsRegistry registry;
    cluster::ClusterOptions opt;
    opt.devices = devices;
    opt.engine.mode = gpusim::SimMode::Functional;
    opt.engine.gpu.num_sms = 4;
    opt.engine.device_memory_bytes = 64u << 20;
    opt.max_sessions_per_shard = static_cast<std::uint32_t>(sessions);
    opt.coalesce_bytes = 16u << 10;
    opt.background = args.get_bool("background");
    // Synchronous mode auto-flushes on a full queue; background mode keeps
    // the default reject policy and the feed loop below absorbs kOverloaded.
    if (!opt.background) opt.admission = serve::AdmissionPolicy::kAutoFlush;
    const std::string trace_path = args.get("trace");
    const std::string postmortem_path = args.get("postmortem");
    telemetry::FlightRecorder recorder;
    if (args.get_bool("stats") || !postmortem_path.empty())
      opt.metrics = &registry;
    opt.trace = !trace_path.empty();
    if (!postmortem_path.empty()) {
      opt.recorder = &recorder;
      opt.postmortem_path = postmortem_path;
    }
    if (args.get_bool("slo")) opt.slo = telemetry::SloPolicy::serving_defaults();

    auto router = cluster::Router::create(
        ac::PatternSet({"he", "she", "his", "hers", "ab"}), opt);
    ACGPU_CHECK(router.is_ok(), router.status().to_string());
    cluster::Router& cl = router.value();

    std::vector<serve::SessionId> ids(sessions);
    std::vector<std::string> streams(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      ids[i] = cl.open().value();
      streams[i] = make_stream(seed, i, stream_bytes);
    }
    std::printf("opened %zu sessions across %u devices", sessions, devices);
    if (sessions > 0)
      std::printf(" (session 0 -> shard %u, globally unique id %llu)",
                  cl.shard_of(ids[0]).value(),
                  static_cast<unsigned long long>(ids[0]));
    std::printf("\n");

    // Interleaved replay, one chunk per session per round. Halfway through,
    // fail-stop one device: the router drains it (host fallback keeps every
    // accepted byte exact) and migrates its sessions to the survivors.
    Stopwatch clock;
    const std::size_t half = (stream_bytes / chunk / 2) * chunk;
    bool failed = false;
    for (std::size_t pos = 0; pos < stream_bytes; pos += chunk) {
      if (fail && !failed && pos >= half) {
        const std::uint32_t victim = cl.shard_of(ids[0]).value();
        ACGPU_CHECK(cl.mark_failed(victim).is_ok(), "mark_failed failed");
        failed = true;
        std::printf("fail-stopped device %u mid-replay; its sessions migrated "
                    "(session 0 now on shard %u)\n",
                    victim, cl.shard_of(ids[0]).value());
      }
      for (std::size_t i = 0; i < sessions; ++i) {
        const std::string_view slice =
            std::string_view(streams[i]).substr(pos, chunk);
        for (;;) {
          const Status s = cl.feed(ids[i], slice);
          if (s.is_ok()) break;
          ACGPU_CHECK(s.code() == StatusCode::kOverloaded, s.to_string());
          std::this_thread::yield();  // bounded queue pushed back
        }
      }
    }
    ACGPU_CHECK(cl.drain().is_ok(), "drain failed");
    const double replay_s = clock.seconds();

    // Verify every session — including the migrated ones — against a serial
    // host scan of its own stream: zero lost, zero duplicated.
    std::uint64_t total_matches = 0;
    for (std::size_t i = 0; i < sessions; ++i) {
      std::vector<ac::Match> expected = ac::find_all(cl.dfa(), streams[i]);
      ac::normalize_matches(expected);
      auto got = cl.poll(ids[i]).value();
      ac::normalize_matches(got);
      ACGPU_CHECK(got == expected, "session " << ids[i] << " diverged: "
                                              << got.size() << " matches vs "
                                              << expected.size() << " expected");
      total_matches += got.size();
    }
    const cluster::RouterStats stats = cl.stats();
    std::printf(
        "replayed %zu sessions x %s in %s: %llu matches, %llu rebalance(s) "
        "moving %llu session(s), %u/%u shards healthy\n",
        sessions, format_bytes(stream_bytes).c_str(),
        format_seconds(replay_s).c_str(),
        static_cast<unsigned long long>(total_matches),
        static_cast<unsigned long long>(stats.rebalances),
        static_cast<unsigned long long>(stats.sessions_rebalanced),
        stats.healthy_shards, stats.shards);
    std::puts("every session matched its serial reference");

    // Bulk path: slab-scatter one input across the surviving devices and
    // gather the merged, seam-exact match stream.
    const auto scan_bytes = static_cast<std::size_t>(args.get_bytes("scan"));
    if (scan_bytes > 0) {
      const std::string corpus = workload::make_corpus(scan_bytes, seed);
      auto scan = cl.scan(corpus);
      ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
      std::vector<ac::Match> expected = ac::find_all(cl.dfa(), corpus);
      ac::normalize_matches(expected);
      ACGPU_CHECK(scan.value().matches == expected,
                  "bulk scan diverged from the serial reference");
      std::printf(
          "bulk scan of %s across %u device(s): %zu matches (seam-exact), "
          "simulated makespan %s = slowest slab\n",
          format_bytes(scan_bytes).c_str(), scan.value().devices_used,
          scan.value().matches.size(),
          format_seconds(scan.value().makespan_seconds).c_str());
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "acgpu_cluster: cannot write %s\n",
                     trace_path.c_str());
        return 2;
      }
      const Status ts = cl.write_trace(out);
      ACGPU_CHECK(ts.is_ok(), ts.to_string());
      std::printf(
          "fleet trace -> %s (router + %u shard host + device processes; "
          "search a trace id to follow one request end to end)\n",
          trace_path.c_str(), devices);
    }
    if (failed && !postmortem_path.empty())
      std::printf("postmortem black box -> %s (%llu events recorded)\n",
                  postmortem_path.c_str(),
                  static_cast<unsigned long long>(recorder.recorded()));
    if (args.get_bool("slo"))
      for (std::uint32_t k = 0; k < devices; ++k)
        std::printf("shard %u health: %s\n", k,
                    telemetry::to_string(cl.shard_health_state(k)));
    if (args.get_bool("stats")) registry.snapshot().write_table(std::cout);
    cl.shutdown();
  } catch (const Error& e) {
    std::fprintf(stderr, "acgpu_cluster: %s\n", e.what());
    return 2;
  }
  return 0;
}
