// Bioinformatics example: motif scanning over a synthetic genome — the
// paper's second motivating domain (genome/protein matching, refs [11],
// [14]). Compares serial, global-only, shared, and PFAC on the same probes.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Scans a synthetic genome for motif probes on the simulated GPU.");
  args.add_flag("genome", "genome size in bases", "8MB");
  args.add_flag("motifs", "number of motif probes", "2000");
  args.add_flag("motif-length", "probe length in bases", "12");
  args.add_flag("mutate", "per-base probe mutation rate", "0.05");
  args.add_flag("seed", "generator seed", "13");
  if (!args.parse(argc, argv)) return 0;

  const auto bases = static_cast<std::size_t>(args.get_bytes("genome"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  std::printf("synthesising %s genome...\n", format_bytes(bases).c_str());
  const std::string genome = workload::make_dna_sequence(bases, seed);
  const ac::PatternSet motifs = workload::extract_dna_motifs(
      genome, static_cast<std::uint32_t>(args.get_int("motifs")),
      static_cast<std::uint32_t>(args.get_int("motif-length")),
      args.get_double("mutate"), derive_seed(seed, 2));
  const ac::Dfa dfa = ac::build_dfa(motifs, 8);
  std::printf("%zu probes (len %u, DNA alphabet) -> %u DFA states, STT %s\n",
              motifs.size(), motifs.max_length(), dfa.state_count(),
              format_bytes(dfa.stt_bytes()).c_str());

  // Serial baseline (real scan + Core2 model).
  Stopwatch host;
  const std::uint64_t hits = ac::count_matches(dfa, genome);
  const double host_serial = host.seconds();
  const auto est = cpumodel::estimate_serial(
      dfa, std::string_view(genome).substr(0, std::min<std::size_t>(genome.size(), kMiB)),
      genome.size());
  std::printf("\n%llu probe hits. serial: host %s, modeled Core2 %s (%.1f cyc/B)\n",
              static_cast<unsigned long long>(hits), format_seconds(host_serial).c_str(),
              format_seconds(est.seconds).c_str(), est.cycles_per_byte);

  const gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
  gpusim::DeviceMemory device(768 * kMiB);
  const kernels::DeviceDfa device_dfa(device, dfa);
  const ac::PfacAutomaton pfac(motifs);
  const kernels::DevicePfac device_pfac(device, pfac);
  const gpusim::DevAddr text_addr = kernels::upload_text(device, genome);

  Table table;
  table.set_header({"kernel", "sim time", "Gbps", "speedup vs serial", "tex hit"});
  auto add_row = [&](const char* name, double seconds, double tex_hit) {
    char speedup[16], hit[16];
    std::snprintf(speedup, sizeof speedup, "%.1fx", est.seconds / seconds);
    std::snprintf(hit, sizeof hit, "%.3f", tex_hit);
    table.add_row({name, format_seconds(seconds),
                   format_gbps(to_gbps(genome.size(), seconds)), speedup, hit});
  };

  kernels::AcLaunchSpec spec;
  spec.sim.mode = gpusim::SimMode::Timed;
  for (auto [name, approach] :
       {std::pair{"global-only", kernels::Approach::kGlobalOnly},
        std::pair{"shared (diagonal)", kernels::Approach::kShared}}) {
    spec.approach = approach;
    const std::size_t mark = device.mark();
    const auto out =
        kernels::run_ac_kernel(gpu, device, device_dfa, text_addr, genome.size(), spec);
    device.release(mark);
    add_row(name, out.sim.seconds, out.sim.metrics.tex_hit_rate());
  }
  {
    kernels::PfacLaunchSpec pfac_spec;
    pfac_spec.match_capacity = 2;
    const std::size_t mark = device.mark();
    const auto out = kernels::run_pfac_kernel(gpu, device, device_pfac, text_addr,
                                              genome.size(), pfac_spec);
    device.release(mark);
    add_row("PFAC (1 thread/base)", out.sim.seconds, out.sim.metrics.tex_hit_rate());
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nnote: DNA's 4-letter alphabet keeps the hot STT rows tiny, so the "
              "texture cache stays warm even for large probe sets.\n");
  return 0;
}
