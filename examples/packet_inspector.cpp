// Packet-batch inspection (the Gnort deployment model the paper cites):
// generate a synthetic traffic trace with injected attacks, ship the batch
// to the simulated GPU, inspect one packet per thread, and report per-rule
// alert counts plus detection completeness against the known ground truth.
#include <cstdio>
#include <iostream>
#include <set>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Batched GPU deep packet inspection over a synthetic trace.");
  args.add_flag("packets", "packets in the batch", "20000");
  args.add_flag("attack-rate", "fraction of packets carrying an attack", "0.02");
  args.add_flag("seed", "trace seed", "99");
  if (!args.parse(argc, argv)) return 0;

  const auto rules = workload::parse_snort_rules(
      "alert tcp any any -> any 80  (msg:\"web shell\";   content:\"cmd.exe\";)\n"
      "alert tcp any any -> any any (msg:\"NOP sled\";    content:\"|90 90 90 90|\";)\n"
      "alert tcp any any -> any any (msg:\"meterpreter\"; content:\"meterpreter\";)\n"
      "alert udp any any -> any 53  (msg:\"dns tunnel\";  content:\"dnscat\";)\n");
  std::vector<std::uint32_t> owner;
  const ac::PatternSet patterns = workload::rules_to_patterns(rules, &owner);
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);

  std::vector<std::string> attacks(patterns.begin(), patterns.end());
  workload::PacketTraceConfig trace_cfg;
  trace_cfg.packets = static_cast<std::uint32_t>(args.get_int("packets"));
  trace_cfg.attack_rate = args.get_double("attack-rate");
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string corpus = workload::make_corpus(4 * kMiB, trace_cfg.seed);
  std::vector<std::uint32_t> injected;
  const workload::PacketTrace trace =
      workload::make_packet_trace(corpus, attacks, trace_cfg, &injected);
  std::printf("trace: %zu packets, %s total, %zu with injected attacks\n",
              trace.packet_count(), format_bytes(trace.data.size()).c_str(),
              injected.size());

  const gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
  gpusim::DeviceMemory device(512 * kMiB);
  const kernels::DeviceDfa ddfa(device, dfa);
  const kernels::DeviceBatch batch(device, trace);

  kernels::PacketLaunchSpec spec;
  spec.sim.mode = gpusim::SimMode::Functional;
  const auto out = kernels::run_packet_kernel(gpu, device, ddfa, batch, spec);

  std::vector<std::uint64_t> hits(rules.size(), 0);
  std::set<std::uint32_t> flagged;
  for (const kernels::PacketMatch& m : out.matches) {
    ++hits[owner[static_cast<std::size_t>(m.pattern)]];
    flagged.insert(m.packet);
  }

  Table table;
  table.set_header({"rule", "alerts"});
  for (std::size_t r = 0; r < rules.size(); ++r)
    table.add_row({rules[r].message, std::to_string(hits[r])});
  std::printf("\n");
  table.print(std::cout);

  std::size_t detected = 0;
  for (std::uint32_t pkt : injected) detected += flagged.count(pkt);
  std::printf("\ndetected %zu/%zu attacked packets (%zu alerts total)\n", detected,
              injected.size(), out.matches.size());
  std::printf("simulated GTX 285 batch time: %s  ->  %s Gbps of traffic\n",
              format_seconds(out.sim.seconds).c_str(),
              format_gbps(to_gbps(trace.data.size(), out.sim.seconds)).c_str());
  return detected == injected.size() ? 0 : 1;
}
