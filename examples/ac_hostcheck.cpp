// ac_hostcheck — happens-before audit of the async host pipeline, the
// host-side sibling of ac_memcheck:
//
//   ac_hostcheck                            # full staging-geometry sweep
//   ac_hostcheck --configs=s2-d2-split      # one geometry
//   ac_hostcheck --iterations 10 --seed 7   # a deeper sweep
//   ac_hostcheck --cluster                  # audit the multi-device Router
//                                           # tier instead: devices {1,2,4}
//                                           # x streams {2,4}, with a
//                                           # mid-stream fail-stop rebalance
//   ac_hostcheck --json                     # machine-readable report
//   ac_hostcheck --broken                   # negative controls: every
//                                           # seeded-broken schedule must be
//                                           # flagged with its expected kind
//   ac_hostcheck --broken-run=early-release # run ONE broken schedule; exits
//                                           # 1 when hazards are found (the
//                                           # WILL_FAIL ctest entries)
//   ac_hostcheck --list                     # config + broken-schedule names
//
// Each geometry runs real Engine::scan calls under the hostcheck Recorder;
// the analyzer reconstructs the op DAG (stream FIFO, event edges, the
// staging pool's release/wait_until handshake) and reports conflicting
// device accesses that are only ordered by timing luck, lease-protocol
// violations, and lock-order cycles over the serve mutexes. Match output is
// diffed against the serial reference at the same time.
//
// Exit status: 0 when every config audits clean and conformant (or every
// broken schedule is caught), 1 on hazards/mismatches (or a missed broken
// schedule), 2 on bad usage.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string_view>

#include "hostcheck/audit.h"
#include "hostcheck/broken.h"
#include "oracle/workload_gen.h"
#include "util/arg_parser.h"
#include "util/byte_units.h"
#include "util/error.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace acgpu;

namespace {

hostcheck::HostAuditConfig parse_config(const std::string& name) {
  hostcheck::HostAuditConfig config;
  unsigned streams = 0;
  unsigned depth = 0;
  char mode[8] = {0};
  const bool ok =
      std::sscanf(name.c_str(), "s%u-d%u-%7s", &streams, &depth, mode) == 3 &&
      streams >= 1 && depth >= 1 &&
      (std::string_view(mode) == "split" || std::string_view(mode) == "shared");
  ACGPU_CHECK(ok, "bad config '" << name
                                 << "' (want s<streams>-d<depth>-split|shared, "
                                    "e.g. s2-d2-split)");
  config.streams = streams;
  config.depth = depth;
  config.split_readback = std::string_view(mode) == "split";
  return config;
}

std::vector<hostcheck::HostAuditConfig> parse_configs(const std::string& csv) {
  std::vector<hostcheck::HostAuditConfig> configs;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ','))
    if (!token.empty()) configs.push_back(parse_config(token));
  return configs;
}

/// --cluster: the Router-tier matrix — devices {1,2,4} x streams {2,4},
/// every cell fed by concurrent sessions with a fail-stop rebalance
/// injected mid-stream whenever more than one shard is up. Returns the
/// sweep rows (merged across workloads) for the shared reporting path.
std::vector<hostcheck::HostSweepResult> run_cluster_sweep(
    std::uint64_t seed, std::uint64_t iterations) {
  std::vector<hostcheck::HostSweepResult> results;
  const hostcheck::HostAuditSpec spec;
  for (const std::uint32_t devices : {1u, 2u, 4u}) {
    for (const std::uint32_t streams : {2u, 4u}) {
      hostcheck::HostSweepResult result;
      result.name = "cluster d" + std::to_string(devices) + "-s" +
                    std::to_string(streams);
      for (std::uint64_t i = 0; i < iterations; ++i) {
        const oracle::CompiledWorkload w(oracle::generate_workload(seed, i));
        const hostcheck::HostAuditOutcome outcome =
            hostcheck::audit_cluster(w, devices, streams, spec);
        result.report.merge(outcome.report, spec.analyze.max_hazards);
        ++result.workloads;
        if (!outcome.matches_ok) ++result.mismatches;
      }
      results.push_back(std::move(result));
    }
  }
  return results;
}

/// --broken: every seeded-broken schedule must be flagged with its expected
/// hazard kind. Returns the number of schedules the analyzer MISSED.
int run_broken_controls(bool json, bool quiet) {
  struct Row {
    hostcheck::BrokenSchedule schedule;
    hostcheck::HostAuditReport report;
    bool caught = false;
  };
  std::vector<Row> rows;
  for (const hostcheck::BrokenSchedule s : hostcheck::all_broken_schedules()) {
    Row row{s, hostcheck::run_broken_schedule(s), false};
    row.caught = row.report.count(hostcheck::expected_hazard(s)) > 0;
    rows.push_back(std::move(row));
  }

  int missed = 0;
  if (json) {
    std::ostream& out = std::cout;
    out << "{\"schedules\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"schedule\":\"" << to_string(rows[i].schedule)
          << "\",\"expected\":\""
          << to_string(hostcheck::expected_hazard(rows[i].schedule))
          << "\",\"caught\":" << (rows[i].caught ? "true" : "false")
          << ",\"report\":";
      rows[i].report.write_json(out);
      out << "}";
      missed += rows[i].caught ? 0 : 1;
    }
    out << "],\"missed\":" << missed << "}\n";
    return missed;
  }

  Table table;
  table.set_header({"broken schedule", "expected hazard", "hazards", "caught"});
  for (const Row& row : rows) {
    table.add_row({to_string(row.schedule),
                   to_string(hostcheck::expected_hazard(row.schedule)),
                   std::to_string(row.report.total_hazards()),
                   row.caught ? "yes" : "NO"});
    missed += row.caught ? 0 : 1;
  }
  table.print(std::cout);
  if (missed > 0 && !quiet)
    for (const Row& row : rows)
      if (!row.caught) {
        std::printf("\n--- %s (missed) ---\n", to_string(row.schedule));
        row.report.write_text(std::cout);
      }
  std::printf(missed == 0 ? "all broken schedules caught.\n"
                          : "%d broken schedule(s) NOT caught.\n",
              missed);
  return missed;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Host-pipeline happens-before auditor: drives real Engine scans (and\n"
      "the streaming serve layer) under the host recorder across a staging\n"
      "geometry matrix, reconstructs the op DAG from stream, event, and\n"
      "lease records, and reports unordered conflicting accesses, staging\n"
      "lease-protocol violations, and lock-order cycles.\n"
      "usage: ac_hostcheck [flags]");
  args.add_flag("seed", "workload generator seed", "42");
  args.add_flag("iterations", "number of generated workloads", "5");
  args.add_flag("configs",
                "comma-separated geometries, e.g. s2-d2-split,s4-d1-shared "
                "(empty = full matrix)",
                "");
  args.add_bool_flag("cluster",
                     "audit the multi-device Router tier instead: devices "
                     "{1,2,4} x streams {2,4} with a mid-stream rebalance");
  args.add_bool_flag("broken",
                     "audit the deliberately-broken schedules instead; "
                     "exit 0 iff every one is flagged with its expected kind");
  args.add_flag("broken-run",
                "run ONE broken schedule by name; exit 1 when hazards are "
                "found (for WILL_FAIL tests)",
                "");
  args.add_bool_flag("json", "emit one machine-readable JSON report");
  args.add_bool_flag("list", "print config and broken-schedule names, exit");
  args.add_bool_flag("quiet", "suppress per-config hazard details");
  try {
    if (!args.parse(argc, argv)) return 0;
    if (args.get_bool("list")) {
      for (const hostcheck::HostAuditConfig& c :
           hostcheck::default_config_matrix())
        std::printf("%s\n", to_string(c).c_str());
      for (const hostcheck::BrokenSchedule s : hostcheck::all_broken_schedules())
        std::printf("broken:%s\n", to_string(s));
      return 0;
    }
    if (!args.get("broken-run").empty()) {
      const hostcheck::BrokenSchedule schedule =
          hostcheck::broken_schedule_from_name(args.get("broken-run"));
      const hostcheck::HostAuditReport report =
          hostcheck::run_broken_schedule(schedule);
      if (args.get_bool("json"))
        report.write_json(std::cout);
      else
        report.write_text(std::cout);
      return report.clean() ? 0 : 1;
    }
    if (args.get_bool("broken"))
      return run_broken_controls(args.get_bool("json"), args.get_bool("quiet"))
                     == 0
                 ? 0
                 : 1;

    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const auto iterations =
        static_cast<std::uint64_t>(args.get_int("iterations"));
    const std::vector<hostcheck::HostAuditConfig> configs =
        parse_configs(args.get("configs"));
    const bool json = args.get_bool("json");

    if (!json) {
      if (args.get_bool("cluster"))
        std::printf(
            "hostcheck: %llu workloads x {1,2,4} devices x {2,4} streams, "
            "seed %llu\n",
            static_cast<unsigned long long>(iterations),
            static_cast<unsigned long long>(seed));
      else
        std::printf(
            "hostcheck: %llu workloads x %zu configs + serve, seed %llu\n",
            static_cast<unsigned long long>(iterations),
            configs.empty() ? hostcheck::default_config_matrix().size()
                            : configs.size(),
            static_cast<unsigned long long>(seed));
    }

    Stopwatch clock;
    const std::vector<hostcheck::HostSweepResult> results =
        args.get_bool("cluster")
            ? run_cluster_sweep(seed, iterations)
            : hostcheck::audit_conformance(seed, iterations, configs);

    bool failed = false;
    if (json) {
      std::ostream& out = std::cout;
      out << "{\"seed\":" << seed << ",\"iterations\":" << iterations
          << ",\"sweeps\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (i > 0) out << ",";
        out << "{\"name\":\"" << r.name << "\",\"workloads\":" << r.workloads
            << ",\"mismatches\":" << r.mismatches << ",\"report\":";
        r.report.write_json(out);
        out << "}";
        failed = failed || !r.report.clean() || r.mismatches > 0;
      }
      out << "]}\n";
      return failed ? 1 : 0;
    }

    Table table;
    table.set_header({"sweep", "workloads", "ops", "accesses", "leases",
                      "lock edges", "hazards", "mismatches"});
    for (const auto& r : results) {
      table.add_row({r.name, std::to_string(r.workloads),
                     std::to_string(r.report.ops),
                     std::to_string(r.report.accesses),
                     std::to_string(r.report.leases),
                     std::to_string(r.report.lock_edges),
                     std::to_string(r.report.total_hazards()),
                     std::to_string(r.mismatches)});
      failed = failed || !r.report.clean() || r.mismatches > 0;
    }
    table.print(std::cout);
    std::printf("(%s)\n", format_seconds(clock.seconds()).c_str());

    if (failed && !args.get_bool("quiet")) {
      for (const auto& r : results) {
        if (r.report.clean() && r.mismatches == 0) continue;
        std::printf("\n--- %s ---\n", r.name.c_str());
        if (r.mismatches > 0)
          std::printf("%llu workload(s) diverged from the serial reference\n",
                      static_cast<unsigned long long>(r.mismatches));
        r.report.write_text(std::cout);
      }
    }
    if (failed) {
      std::printf("\nhost-schedule hazards found.\n");
      return 1;
    }
    std::printf("all host schedules audit clean.\n");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ac_hostcheck: %s\n", e.what());
    return 2;
  }
}
