// acgpu_prof — run a workload through acgpu::Engine with full telemetry and
// emit the run as explainable artifacts:
//
//   acgpu_prof --size 64MB --streams 4 --trace trace.json --metrics metrics.json
//   acgpu_prof --stats                      # human-readable metrics table
//   acgpu_prof --mode functional --csv metrics.csv
//
// The Chrome trace (open in Perfetto / chrome://tracing) shows one track per
// pipeline stream plus the copy/compute engine rows and queue-depth /
// engines-busy counter tracks; the metrics snapshot carries the gpusim.*,
// and pipeline.* series described in docs/OBSERVABILITY.md. The same
// snapshot schema is what bench/check_regression gates in CI.
//
// Exit status: 0 on success, 1 when an artifact cannot be written, 2 on bad
// usage or an engine failure.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "acgpu.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

using namespace acgpu;

namespace {

pipeline::KernelVariant parse_variant(const std::string& name) {
  if (name == "shared") return pipeline::KernelVariant::kShared;
  if (name == "global") return pipeline::KernelVariant::kGlobalOnly;
  if (name == "pfac") return pipeline::KernelVariant::kPfac;
  ACGPU_CHECK(false, "unknown --variant '" << name << "' (shared|global|pfac)");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "acgpu_prof: run a synthetic workload through the batched multi-stream\n"
      "pipeline with telemetry enabled; emit a Chrome trace (Perfetto) and a\n"
      "metrics snapshot (JSON/CSV) for the run.");
  args.add_flag("size", "input size", "64MB");
  args.add_flag("batch", "owned bytes per pipeline batch", "4MB");
  args.add_flag("streams", "pipeline streams (>= 2 overlaps copy/compute)", "4");
  args.add_flag("patterns", "dictionary size (patterns extracted from corpus)", "2000");
  args.add_flag("pattern-min", "minimum pattern length", "6");
  args.add_flag("pattern-max", "maximum pattern length", "16");
  args.add_flag("seed", "workload seed", "780");
  args.add_flag("variant", "kernel variant: shared|global|pfac", "shared");
  args.add_flag("mode", "sim mode: timed|functional", "timed");
  args.add_flag("trace", "write Chrome trace-event JSON here (empty = skip)", "");
  args.add_flag("metrics", "write the metrics snapshot JSON here (empty = skip)", "");
  args.add_flag("csv", "write the metrics snapshot CSV here (empty = skip)", "");
  args.add_bool_flag("stats", "print the metrics snapshot as a table");
  args.add_bool_flag("quiet", "suppress the run summary");
  try {
    if (!args.parse(argc, argv)) return 0;

    const auto size = static_cast<std::uint64_t>(args.get_bytes("size"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const std::string mode_name = args.get("mode");
    ACGPU_CHECK(mode_name == "timed" || mode_name == "functional",
                "unknown --mode '" << mode_name << "' (timed|functional)");

    // Corpus + dictionary, the pipeline-sweep recipe: patterns are drawn
    // from a pool past the scanned prefix so match density is realistic.
    const std::uint64_t pool_bytes = 4u << 20;
    const std::string corpus = workload::make_corpus(size + pool_bytes, seed);
    const std::string_view input(corpus.data(), size);
    workload::ExtractConfig ec;
    ec.count = static_cast<std::uint32_t>(args.get_int("patterns"));
    ec.min_length = static_cast<std::uint32_t>(args.get_int("pattern-min"));
    ec.max_length = static_cast<std::uint32_t>(args.get_int("pattern-max"));
    ec.word_aligned = true;
    const ac::PatternSet patterns = workload::extract_patterns(
        {corpus.data() + size, pool_bytes}, ec);

    telemetry::MetricsRegistry registry;
    telemetry::Tracer tracer;

    EngineOptions opt;
    opt.variant = parse_variant(args.get("variant"));
    opt.streams = static_cast<std::uint32_t>(args.get_int("streams"));
    opt.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));
    opt.mode = mode_name == "functional" ? gpusim::SimMode::Functional
                                         : gpusim::SimMode::Timed;
    opt.telemetry.metrics = &registry;
    opt.telemetry.tracer = &tracer;

    DeviceOptions dopt;
    dopt.memory_bytes = 1u << 30;
    Result<Device> device = Device::create(dopt);
    ACGPU_CHECK(device.is_ok(), device.status().to_string());

    Stopwatch clock;
    Result<Engine> engine = Engine::create(device.value(), patterns, opt);
    ACGPU_CHECK(engine.is_ok(), engine.status().to_string());
    Result<ScanResult> scan = engine.value().scan(input);
    ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
    const ScanResult& result = scan.value();
    const double wall_seconds = clock.seconds();

    const telemetry::MetricsSnapshot snapshot = registry.snapshot();

    if (!args.get_bool("quiet")) {
      std::printf(
          "acgpu_prof: %s input, %u stream(s), %s batches, %s mode\n"
          "  simulated: %s makespan, %s Gbps, overlap %.0f%%\n"
          "  host: %s wall, %zu span(s), %zu metric series\n",
          format_bytes(size).c_str(), opt.streams,
          format_bytes(opt.batch_bytes).c_str(), mode_name.c_str(),
          format_seconds(result.stats.makespan_seconds).c_str(),
          format_gbps(result.stats.throughput_gbps()).c_str(),
          result.stats.overlap_ratio * 100, format_seconds(wall_seconds).c_str(),
          tracer.event_count(), snapshot.entries.size());
      if (opt.mode == gpusim::SimMode::Functional)
        std::printf("  matches: %zu\n", result.matches.size());
    }

    const std::string trace_path = args.get("trace");
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "acgpu_prof: cannot write %s\n", trace_path.c_str());
        return 1;
      }
      pipeline::write_chrome_trace(result, &tracer, out);
      if (!args.get_bool("quiet"))
        std::printf("wrote %s (open in Perfetto or chrome://tracing)\n",
                    trace_path.c_str());
    }
    const std::string metrics_path = args.get("metrics");
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) {
        std::fprintf(stderr, "acgpu_prof: cannot write %s\n", metrics_path.c_str());
        return 1;
      }
      snapshot.write_json(out);
      if (!args.get_bool("quiet")) std::printf("wrote %s\n", metrics_path.c_str());
    }
    const std::string csv_path = args.get("csv");
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::fprintf(stderr, "acgpu_prof: cannot write %s\n", csv_path.c_str());
        return 1;
      }
      snapshot.write_csv(out);
      if (!args.get_bool("quiet")) std::printf("wrote %s\n", csv_path.c_str());
    }
    if (args.get_bool("stats")) snapshot.write_table(std::cout);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "acgpu_prof: %s\n", e.what());
    return 2;
  }
}
