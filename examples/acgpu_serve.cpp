// acgpu_serve — the streaming session service demo: replay interleaved
// multi-session traffic against one shared engine.
//
//   acgpu_serve                         # 8 sessions, defaults
//   acgpu_serve --sessions 64 --queue-chunks 4 --background --soak
//   acgpu_serve --chunk 128 --stats
//
// Each simulated client streams its own seeded corpus chunk by chunk; the
// replay round-robins feeds across all sessions so superbatches mix many
// streams, exactly the traffic shape the scheduler's partition filter and
// the sessions' boundary continuations exist for. After the replay every
// session's matches are checked against a serial host scan of its own
// stream — the demo doubles as an end-to-end soak (`--soak` asserts that
// backpressure actually fired and the drain left nothing queued).
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "acgpu.h"

using namespace acgpu;

namespace {

std::string make_stream(std::uint64_t seed, std::size_t session,
                        std::size_t bytes) {
  Rng rng(derive_seed(seed, session));
  std::string text(bytes, '\0');
  for (char& c : text) c = "hershise ab"[rng.next_below(11)];
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "acgpu_serve: replay interleaved multi-session traffic through the "
      "streaming session service.\n"
      "usage: acgpu_serve [flags]");
  args.add_flag("sessions", "concurrent sessions to replay", "8");
  args.add_flag("bytes", "stream bytes per session", "16KB");
  args.add_flag("chunk", "feed size per chunk", "512");
  args.add_flag("queue-chunks", "bounded queue depth (admission control)", "64");
  args.add_flag("coalesce", "superbatch coalescing target", "16KB");
  args.add_flag("seed", "corpus seed", "42");
  args.add_bool_flag("background", "consume the queue on a worker thread");
  args.add_bool_flag("soak", "assert backpressure fired and drain was clean");
  args.add_bool_flag("stats", "print the serve.* metrics table");

  try {
    if (!args.parse(argc, argv)) return 0;
    const std::size_t sessions = static_cast<std::size_t>(args.get_int("sessions"));
    const std::size_t stream_bytes = static_cast<std::size_t>(args.get_bytes("bytes"));
    const std::size_t chunk = static_cast<std::size_t>(args.get_int("chunk"));
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
    ACGPU_CHECK(sessions > 0 && chunk > 0, "--sessions and --chunk must be >= 1");
    ACGPU_CHECK(!args.get_bool("soak") || args.get_bool("background"),
                "--soak needs --background (the synchronous service "
                "auto-flushes instead of rejecting, so backpressure never "
                "surfaces as kOverloaded)");

    telemetry::MetricsRegistry registry;
    serve::ServeOptions opt;
    opt.engine.mode = gpusim::SimMode::Functional;
    opt.engine.gpu.num_sms = 4;
    opt.engine.device_memory_bytes = 64u << 20;
    opt.max_sessions = static_cast<std::uint32_t>(sessions);
    opt.max_queue_chunks = static_cast<std::uint32_t>(args.get_int("queue-chunks"));
    opt.coalesce_bytes = static_cast<std::uint64_t>(args.get_bytes("coalesce"));
    opt.background = args.get_bool("background");
    if (args.get_bool("stats")) opt.metrics = &registry;

    auto service = serve::StreamService::create(
        ac::PatternSet({"he", "she", "his", "hers", "ab"}), opt);
    ACGPU_CHECK(service.is_ok(), service.status().to_string());
    serve::StreamService& srv = service.value();

    std::vector<serve::SessionId> ids(sessions);
    std::vector<std::string> streams(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      ids[i] = srv.open().value();
      streams[i] = make_stream(seed, i, stream_bytes);
    }

    // Interleaved replay: one chunk per session per round, so every
    // superbatch carries many sessions' bytes side by side.
    Stopwatch clock;
    std::uint64_t overloaded = 0;
    for (std::size_t pos = 0; pos < stream_bytes; pos += chunk) {
      for (std::size_t i = 0; i < sessions; ++i) {
        const std::string_view slice =
            std::string_view(streams[i]).substr(pos, chunk);
        for (;;) {
          const Status s = srv.feed(ids[i], slice);
          if (s.is_ok()) break;
          ACGPU_CHECK(s.code() == StatusCode::kOverloaded, s.to_string());
          ++overloaded;  // bounded queue pushed back; let the worker catch up
          std::this_thread::yield();
        }
      }
    }
    ACGPU_CHECK(srv.drain().is_ok(), "drain failed");
    const double replay_s = clock.seconds();

    // Verify every session against a serial host scan of its own stream.
    std::uint64_t total_matches = 0;
    for (std::size_t i = 0; i < sessions; ++i) {
      std::vector<ac::Match> expected = ac::find_all(srv.dfa(), streams[i]);
      ac::normalize_matches(expected);
      auto got = srv.poll(ids[i]).value();
      ac::normalize_matches(got);
      ACGPU_CHECK(got == expected, "session " << ids[i] << " diverged: "
                                              << got.size() << " matches vs "
                                              << expected.size() << " expected");
      total_matches += got.size();
    }

    const serve::ServiceStats stats = srv.stats();
    std::printf(
        "replayed %zu sessions x %s in %s: %llu matches, %llu batches "
        "(%llu host fallbacks), %llu spanning, backpressure %llu, "
        "max queue depth %llu\n",
        sessions, format_bytes(stream_bytes).c_str(),
        format_seconds(replay_s).c_str(),
        static_cast<unsigned long long>(total_matches),
        static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.host_fallbacks),
        static_cast<unsigned long long>(stats.spanning_matches),
        static_cast<unsigned long long>(stats.feeds_rejected),
        static_cast<unsigned long long>(stats.max_queue_depth_chunks));
    std::puts("every session matched its serial reference");

    if (args.get_bool("soak")) {
      ACGPU_CHECK(stats.queued_chunks == 0, "drain left work queued");
      ACGPU_CHECK(stats.feeds_rejected >= 1,
                  "soak expected backpressure but the queue never filled; "
                  "lower --queue-chunks or raise --sessions");
      ACGPU_CHECK(stats.feeds_rejected == overloaded, "rejection count skew");
      std::puts("soak ok: backpressure observed, clean drain");
    }
    if (args.get_bool("stats")) registry.snapshot().write_table(std::cout);
    srv.shutdown();
  } catch (const Error& e) {
    std::fprintf(stderr, "acgpu_serve: %s\n", e.what());
    return 2;
  }
  return 0;
}
