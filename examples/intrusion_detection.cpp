// Mini-NIDS: the paper's motivating application (Snort-style deep packet
// inspection). Parses a ruleset, compiles every content string into one AC
// DFA, streams synthetic "packets" through the simulated GPU in batches, and
// attributes matches back to rules — the Gnort [16] architecture in miniature.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "acgpu.h"

using namespace acgpu;

namespace {

constexpr const char* kDefaultRules = R"(# mini ruleset (Snort content subset)
alert tcp any any -> any 80  (msg:"web shell upload";    content:"cmd.exe";)
alert tcp any any -> any 80  (msg:"path traversal";      content:"../../";)
alert tcp any any -> any any (msg:"NOP sled";            content:"|90 90 90 90 90 90|";)
alert tcp any any -> any any (msg:"metasploit marker";   content:"meterpreter";)
alert udp any any -> any 53  (msg:"dns tunnel marker";   content:"dnscat";)
alert tcp any any -> any 25  (msg:"mass mailer";         content:"X-Mailer: evilbot";)
alert tcp any any -> any any (msg:"crlf injection";      content:"|0d 0a 0d 0a|"; content:"Set-Cookie";)
alert tcp any any -> any any (msg:"exe download";        content:"MZ"; content:"This program cannot";)
)";

/// Synthetic traffic: magazine text (benign payload) with attack payloads
/// planted at known offsets.
std::string make_traffic(std::size_t bytes, const std::vector<workload::SnortRule>& rules,
                         std::uint64_t seed, std::size_t* planted) {
  std::string traffic = workload::make_corpus(bytes, seed);
  Rng rng(derive_seed(seed, 1));
  *planted = 0;
  for (std::size_t i = 0; i < rules.size() * 6; ++i) {
    const auto& rule = rules[rng.next_below(rules.size())];
    for (const auto& content : rule.contents) {
      if (content.size() >= traffic.size()) continue;
      const std::size_t pos = rng.next_below(traffic.size() - content.size());
      traffic.replace(pos, content.size(), content);
      ++*planted;
    }
  }
  return traffic;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Mini intrusion-detection pipeline: Snort-style rules -> AC DFA -> "
      "simulated GPU deep packet inspection.");
  args.add_flag("rules", "path to a rule file (default: built-in 8-rule set)", "");
  args.add_flag("traffic", "bytes of synthetic traffic to inspect", "4MB");
  args.add_flag("seed", "traffic generator seed", "2024");
  if (!args.parse(argc, argv)) return 0;

  std::string rule_text = kDefaultRules;
  if (!args.get("rules").empty()) {
    std::ifstream in(args.get("rules"));
    ACGPU_CHECK(static_cast<bool>(in), "cannot open rule file " << args.get("rules"));
    std::ostringstream ss;
    ss << in.rdbuf();
    rule_text = ss.str();
  }

  const auto rules = workload::parse_snort_rules(rule_text);
  std::vector<std::uint32_t> owner;
  const ac::PatternSet patterns = workload::rules_to_patterns(rules, &owner);
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  std::printf("loaded %zu rules (%zu content patterns) -> %u DFA states\n",
              rules.size(), patterns.size(), dfa.state_count());

  const auto traffic_bytes = static_cast<std::size_t>(args.get_bytes("traffic"));
  std::size_t planted = 0;
  const std::string traffic = make_traffic(
      traffic_bytes, rules, static_cast<std::uint64_t>(args.get_int("seed")), &planted);
  std::printf("inspecting %s of traffic (%zu payloads planted)\n",
              format_bytes(traffic.size()).c_str(), planted);

  const gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
  gpusim::DeviceMemory device(512 * kMiB);
  const kernels::DeviceDfa device_dfa(device, dfa);
  const gpusim::DevAddr text_addr = kernels::upload_text(device, traffic);

  kernels::AcLaunchSpec spec;
  spec.approach = kernels::Approach::kShared;
  spec.match_capacity = 32;
  spec.sim.mode = gpusim::SimMode::Functional;
  Stopwatch host;
  const auto out =
      kernels::run_ac_kernel(gpu, device, device_dfa, text_addr, traffic.size(), spec);
  const double host_s = host.seconds();

  // Attribute matches to rules.
  std::vector<std::uint64_t> hits(rules.size(), 0);
  for (const ac::Match& m : out.matches.matches)
    ++hits[owner[static_cast<std::size_t>(m.pattern)]];

  Table table;
  table.set_header({"rule", "action", "alerts"});
  for (std::size_t r = 0; r < rules.size(); ++r)
    table.add_row({rules[r].message, rules[r].action, std::to_string(hits[r])});
  std::printf("\n");
  table.print(std::cout);

  std::printf("\n%llu total alerts; simulated GTX 285 inspection time %s (%s Gbps); "
              "host simulation took %s\n",
              static_cast<unsigned long long>(out.matches.matches.size()),
              format_seconds(out.sim.seconds).c_str(),
              format_gbps(to_gbps(traffic.size(), out.sim.seconds)).c_str(),
              format_seconds(host_s).c_str());
  const auto serial = ac::count_matches(dfa, traffic);
  std::printf("serial cross-check: %llu matches (%s)\n",
              static_cast<unsigned long long>(serial),
              serial == out.matches.matches.size() ? "agrees" : "DISAGREES");
  return 0;
}
