// acgpu_top — the fleet observability dashboard and black-box viewer.
//
//   acgpu_top                        # live board over a self-driven fleet
//   acgpu_top --once                 # one frame, no ANSI (the CI smoke)
//   acgpu_top --overload 1           # drive shard 1 into SLO breach live
//   acgpu_top --postmortem dump.json # decode a flight-recorder black box
//
// The board stands up an in-process cluster::Router with the full
// observability stack armed — metrics registry, flight recorder, and the
// serving-default SLO health monitor, plus a shared adaptive dispatcher
// routing every coalesced superbatch host-vs-device — drives seeded
// session traffic through it, and refreshes a per-shard table: health
// state, windowed
// p50/p99 feed latency, queue depth, error/eviction rates, and which SLO
// dimensions are breached. With --overload K the driver feeds shard K's
// sessions past their byte quota every frame, so the board shows the
// error-rate window fill, the shard trip degraded -> unhealthy, and new
// placements shift to the survivors (health.<k>.* mirrors every column).
//
// Viewer mode decodes a postmortem JSON written by Router::mark_failed /
// write_postmortem (schema: docs/OBSERVABILITY.md) into a time-sorted
// event table plus the joined metrics snapshot's router.* rows.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "acgpu.h"

using namespace acgpu;

namespace {

int view_postmortem(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "acgpu_top: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = telemetry::parse_json(buf.str());
  const telemetry::JsonValue* pm = doc ? doc->find("postmortem") : nullptr;
  if (pm == nullptr || !pm->is_object()) {
    std::fprintf(stderr,
                 "acgpu_top: %s has no \"postmortem\" object (not a "
                 "flight-recorder dump?)\n",
                 path.c_str());
    return 2;
  }
  const telemetry::JsonValue* reason = pm->find("reason");
  std::printf("postmortem: %s\n",
              reason != nullptr && reason->is_string() ? reason->string().c_str()
                                                       : "(no reason)");
  std::printf("recorded %.0f event(s) lifetime, %.0f dropped; window %s\n",
              pm->number_at("recorded").value_or(0),
              pm->number_at("dropped").value_or(0),
              pm->number_at("window_ns").value_or(0) == 0
                  ? "unbounded"
                  : format_seconds(pm->number_at("window_ns").value_or(0) / 1e9)
                        .c_str());

  const telemetry::JsonValue* events = pm->find("events");
  if (events != nullptr && events->is_array() && !events->array().empty()) {
    const double t0 = events->array().front().number_at("t_ns").value_or(0);
    std::printf("%zu event(s) in the dump window:\n", events->array().size());
    std::printf("  %10s  %-18s %5s %4s %12s %12s %3s\n", "t(+ms)", "kind",
                "shard", "code", "a", "b", "thr");
    for (const telemetry::JsonValue& e : events->array()) {
      const telemetry::JsonValue* kind = e.find("kind");
      std::printf("  %10.3f  %-18s %5.0f %4.0f %12.0f %12.0f %3.0f\n",
                  (e.number_at("t_ns").value_or(0) - t0) / 1e6,
                  kind != nullptr && kind->is_string() ? kind->string().c_str()
                                                       : "?",
                  e.number_at("shard").value_or(0),
                  e.number_at("code").value_or(0), e.number_at("a").value_or(0),
                  e.number_at("b").value_or(0),
                  e.number_at("thread").value_or(0));
    }
  } else {
    std::puts("no events in the dump window");
  }

  const telemetry::JsonValue* metrics = doc->find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    std::printf("joined metrics snapshot: %zu series; router.* rows:\n",
                metrics->object().size());
    for (const auto& [name, value] : metrics->object())
      if (name.rfind("router.", 0) == 0 && value.is_number())
        std::printf("  %-32s %.0f\n", name.c_str(), value.number());
  }
  return 0;
}

void render(cluster::Router& cl, const telemetry::FlightRecorder& recorder,
            const dispatch::Dispatcher& dispatcher, std::uint32_t frame,
            bool ansi) {
  if (ansi) std::printf("\x1b[H\x1b[J");
  const cluster::RouterStats rs = cl.stats();
  std::printf(
      "acgpu_top — frame %u | %u/%u shards healthy | %llu live sessions | "
      "%llu feeds / %s | recorder %llu event(s), %llu dropped\n",
      frame, rs.healthy_shards, rs.shards,
      static_cast<unsigned long long>(rs.sessions_live),
      static_cast<unsigned long long>(rs.feeds),
      format_bytes(rs.bytes).c_str(),
      static_cast<unsigned long long>(recorder.recorded()),
      static_cast<unsigned long long>(recorder.dropped()));
  const dispatch::DispatchStats ds = dispatcher.stats();
  std::printf(
      "dispatch — serial %llu | parallel %llu | gpu %llu | mispredictions "
      "%llu\n",
      static_cast<unsigned long long>(
          ds.decisions[static_cast<int>(dispatch::Backend::kSerialCpu)]),
      static_cast<unsigned long long>(
          ds.decisions[static_cast<int>(dispatch::Backend::kParallelCpu)]),
      static_cast<unsigned long long>(
          ds.decisions[static_cast<int>(dispatch::Backend::kGpuPipeline)]),
      static_cast<unsigned long long>(ds.mispredictions));
  std::printf("%5s %-10s %-10s %5s %8s %6s %6s %8s %8s %6s %6s  %s\n", "SHARD",
              "DEVICE", "STATE", "SESS", "FEEDS", "REJ", "QUEUE", "P50(ms)",
              "P99(ms)", "ERR%", "EVI%", "BREACHED");
  for (std::uint32_t k = 0; k < cl.shard_count(); ++k) {
    const cluster::ShardStats ss = cl.shard_stats(k).value();
    const telemetry::ShardHealth h = cl.shard_health(k).value();
    const char* state = ss.failed     ? "FAILED"
                        : ss.draining ? "draining"
                                      : telemetry::to_string(h.state);
    std::printf(
        "%5u %-10s %-10s %5llu %8llu %6llu %6llu %8.2f %8.2f %5.1f%% %5.1f%%  "
        "%s\n",
        k, ss.device_name.c_str(), state,
        static_cast<unsigned long long>(ss.homed_sessions),
        static_cast<unsigned long long>(ss.service.feeds_accepted),
        static_cast<unsigned long long>(ss.service.feeds_rejected +
                                        ss.service.quota_rejects),
        static_cast<unsigned long long>(ss.service.queued_chunks),
        h.feed_p50_ns / 1e6, h.feed_p99_ns / 1e6, h.error_rate * 100,
        h.eviction_rate * 100, h.breached.empty() ? "-" : h.breached.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "acgpu_top: live per-shard health/SLO dashboard over a self-driven "
      "simulated fleet, and flight-recorder postmortem viewer.\n"
      "usage: acgpu_top [flags]");
  args.add_flag("devices", "shard count (independent simulated devices)", "4");
  args.add_flag("sessions", "concurrent sessions to drive", "8");
  args.add_flag("chunk", "bytes fed per session per frame", "1KB");
  args.add_flag("frames", "frames to render before exiting", "12");
  args.add_flag("refresh-ms", "delay between frames", "250");
  args.add_flag("seed", "traffic seed", "42");
  args.add_flag("overload",
                "feed this shard's sessions past quota every frame to force "
                "an SLO error-rate breach (-1 = off)",
                "-1");
  args.add_bool_flag("once", "render exactly one frame, no ANSI (CI smoke)");
  args.add_flag("postmortem",
                "decode this postmortem JSON instead of running the board", "");

  try {
    if (!args.parse(argc, argv)) return 0;
    const std::string pm_path = args.get("postmortem");
    if (!pm_path.empty()) return view_postmortem(pm_path);

    const auto devices = static_cast<std::uint32_t>(args.get_int("devices"));
    const auto sessions = static_cast<std::size_t>(args.get_int("sessions"));
    const auto chunk = static_cast<std::size_t>(args.get_bytes("chunk"));
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const int overload = args.get_int("overload");
    const bool once = args.get_bool("once");
    const auto frames =
        once ? 1u : static_cast<std::uint32_t>(args.get_int("frames"));
    ACGPU_CHECK(sessions > 0 && chunk > 0 && frames > 0,
                "--sessions, --chunk, and --frames must be >= 1");
    ACGPU_CHECK(overload < static_cast<int>(devices),
                "--overload shard out of range");

    telemetry::MetricsRegistry registry;
    telemetry::FlightRecorder recorder;

    // One advisory dispatcher shared by every shard: each coalesced
    // superbatch is routed host-vs-device by the cost model, and the
    // dispatch.* census lands in the same registry the board reads. The
    // DFA must outlive the dispatcher, the dispatcher the router.
    const ac::PatternSet fleet_patterns({"he", "she", "his", "hers", "ab"});
    const ac::Automaton fleet_automaton(fleet_patterns);
    const ac::Dfa fleet_dfa(fleet_automaton, fleet_patterns,
                            /*pad_pitch_to=*/8);
    dispatch::DispatcherOptions dispatch_opt;
    dispatch_opt.metrics = &registry;
    dispatch::Dispatcher dispatcher(fleet_dfa, dispatch_opt);

    cluster::ClusterOptions opt;
    opt.devices = devices;
    opt.engine.mode = gpusim::SimMode::Functional;
    opt.engine.gpu.num_sms = 4;
    opt.engine.device_memory_bytes = 64u << 20;
    opt.max_sessions_per_shard = static_cast<std::uint32_t>(sessions) + 1;
    opt.admission = serve::AdmissionPolicy::kAutoFlush;
    // AutoFlush only scans when a feed finds the queue full, so bound the
    // per-shard queue at a frame's worth of chunks: superbatches then flush
    // inline while the board is up and the dispatch census advances live.
    opt.coalesce_bytes = 2 * chunk;
    opt.max_queue_chunks = 4;
    opt.max_queue_bytes = 4 * chunk;
    opt.metrics = &registry;
    opt.recorder = &recorder;
    opt.dispatcher = &dispatcher;
    opt.slo = telemetry::SloPolicy::serving_defaults();
    // Small windows so the board reacts within a few frames.
    opt.slo.window = 64;
    opt.slo.min_samples = 8;
    opt.health_eval_interval = 4;
    // Quota only matters to the overloaded shard's sessions: the driver
    // feeds them 4 chunks per frame against a 2-chunks-per-frame budget, so
    // half their feeds fail kCapacityExceeded and fill the error window;
    // everyone else (1 chunk per frame) stays at half quota.
    if (overload >= 0) opt.session_limits.max_bytes = 2ull * frames * chunk;

    auto router = cluster::Router::create(fleet_patterns, opt);
    ACGPU_CHECK(router.is_ok(), router.status().to_string());
    cluster::Router& cl = router.value();

    std::vector<serve::SessionId> ids(sessions);
    for (std::size_t i = 0; i < sessions; ++i) ids[i] = cl.open().value();

    Rng rng(seed);
    std::string payload(chunk, '\0');
    for (std::uint32_t frame = 1; frame <= frames; ++frame) {
      for (std::size_t i = 0; i < sessions; ++i) {
        for (char& c : payload) c = "hershise ab"[rng.next_below(11)];
        const bool victim =
            overload >= 0 &&
            cl.shard_of(ids[i]).value() == static_cast<std::uint32_t>(overload);
        // The victim shard's sessions are fed until (and then past) their
        // byte quota: every over-quota feed is a kCapacityExceeded error in
        // the shard's health window.
        const std::size_t rounds = victim ? 4 : 1;
        for (std::size_t r = 0; r < rounds; ++r) {
          const Status s = cl.feed(ids[i], payload);
          if (!s.is_ok() && s.code() != StatusCode::kCapacityExceeded &&
              s.code() != StatusCode::kOverloaded)
            throw Error(s.to_string());
        }
      }
      render(cl, recorder, dispatcher, frame, !once && frame > 1);
      if (!once && frame < frames)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(args.get_int("refresh-ms")));
    }

    if (overload >= 0) {
      // Placement proof: a fresh session must not land on the breached shard
      // while any healthier one exists.
      const auto victim = static_cast<std::uint32_t>(overload);
      const std::uint32_t home = cl.shard_of(cl.open().value()).value();
      std::printf(
          "shard %u is %s; new session homed on shard %u (placement shifted "
          "away)\n",
          victim, telemetry::to_string(cl.shard_health_state(victim)), home);
      ACGPU_CHECK(cl.shard_health_state(victim) != telemetry::HealthState::kOk,
                  "overloaded shard never breached its SLO");
      ACGPU_CHECK(home != victim,
                  "placement did not shift away from the breached shard");
    }
    ACGPU_CHECK(cl.drain().is_ok(), "drain failed");
    cl.shutdown();
  } catch (const Error& e) {
    std::fprintf(stderr, "acgpu_top: %s\n", e.what());
    return 2;
  }
  return 0;
}
