// Quickstart: the paper's worked example ({he, she, his, hers} over
// "ushers") on the serial matcher, then the same dictionary over a larger
// synthetic text on the simulated GPU — the whole public API in ~80 lines.
#include <cstdio>

#include "acgpu.h"

using namespace acgpu;

int main() {
  // ---- Phase 1: build the AC machine (Section II of the paper) ----------
  const ac::PatternSet patterns({"he", "she", "his", "hers"});
  const ac::Dfa dfa = ac::build_dfa(patterns, /*pad_pitch_to=*/8);
  std::printf("dictionary: %zu patterns -> DFA with %u states (STT %zu bytes)\n",
              patterns.size(), dfa.state_count(), dfa.stt_bytes());

  // ---- Phase 2a: serial matching ----------------------------------------
  const std::string demo = "ushers";
  std::printf("\nserial scan of \"%s\":\n", demo.c_str());
  for (const ac::Match& m : ac::find_all(dfa, demo)) {
    const std::uint32_t len = dfa.pattern_length(m.pattern);
    std::printf("  [%llu..%llu] %.*s\n",
                static_cast<unsigned long long>(m.end + 1 - len),
                static_cast<unsigned long long>(m.end), static_cast<int>(len),
                demo.c_str() + (m.end + 1 - len));
  }

  // ---- Phase 2b: the same matching on the simulated GTX 285 -------------
  const std::string text = workload::make_corpus(256 * kKiB, /*seed=*/7);
  const gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
  gpusim::DeviceMemory device(64 * kMiB);       // "cudaMalloc" arena
  const kernels::DeviceDfa device_dfa(device, dfa);  // STT -> texture memory
  const gpusim::DevAddr text_addr = kernels::upload_text(device, text);

  kernels::AcLaunchSpec spec;
  spec.approach = kernels::Approach::kShared;   // the paper's best variant
  spec.scheme = kernels::StoreScheme::kDiagonal;
  spec.sim.mode = gpusim::SimMode::Functional;  // run every block
  const kernels::AcLaunchOutcome out =
      kernels::run_ac_kernel(gpu, device, device_dfa, text_addr, text.size(), spec);

  std::printf("\nshared-memory kernel over %s of magazine-like text:\n",
              format_bytes(text.size()).c_str());
  std::printf("  blocks=%llu threads=%llu staged=%uB/block\n",
              static_cast<unsigned long long>(out.blocks),
              static_cast<unsigned long long>(out.threads), out.shared_bytes);
  std::printf("  matches=%llu (serial agrees: %s)\n",
              static_cast<unsigned long long>(out.matches.matches.size()),
              out.matches.matches.size() == ac::count_matches(dfa, text) ? "yes"
                                                                         : "NO");
  std::printf("  simulated GTX 285 time: %s  ->  %s Gbps\n",
              format_seconds(out.sim.seconds).c_str(),
              format_gbps(to_gbps(text.size(), out.sim.seconds)).c_str());
  std::printf("  texture cache hit rate: %.3f, global transactions: %llu\n",
              out.sim.metrics.tex_hit_rate(),
              static_cast<unsigned long long>(out.sim.metrics.global_transactions));
  return 0;
}
