// Quickstart: the paper's worked example ({he, she, his, hers} over
// "ushers") on the serial matcher, then the same dictionary over a larger
// synthetic text on the simulated GPU via acgpu::Engine — the whole public
// API in ~80 lines.
#include <cstdio>

#include "acgpu.h"

using namespace acgpu;

int main() {
  // ---- Phase 1: build the AC machine (Section II of the paper) ----------
  const ac::PatternSet patterns({"he", "she", "his", "hers"});
  const ac::Dfa dfa = ac::build_dfa(patterns, /*pad_pitch_to=*/8);
  std::printf("dictionary: %zu patterns -> DFA with %u states (STT %zu bytes)\n",
              patterns.size(), dfa.state_count(), dfa.stt_bytes());

  // ---- Phase 2a: serial matching ----------------------------------------
  const std::string demo = "ushers";
  std::printf("\nserial scan of \"%s\":\n", demo.c_str());
  for (const ac::Match& m : ac::find_all(dfa, demo)) {
    const std::uint32_t len = dfa.pattern_length(m.pattern);
    std::printf("  [%llu..%llu] %.*s\n",
                static_cast<unsigned long long>(m.end + 1 - len),
                static_cast<unsigned long long>(m.end), static_cast<int>(len),
                demo.c_str() + (m.end + 1 - len));
  }

  // ---- Phase 2b: the same matching on the simulated GTX 285 -------------
  // Device owns the simulated GPU (identity, memory arena); Engine compiles
  // the dictionary, uploads the automaton to it, and scans through the
  // batched multi-stream pipeline (H2D copy of batch k+1 overlaps the
  // kernel on batch k). Many engines can share one device, and the cluster
  // tier (examples/acgpu_cluster.cpp) shards work across many devices.
  const std::string text = workload::make_corpus(256 * kKiB, /*seed=*/7);
  Result<Device> device = Device::create();
  ACGPU_CHECK(device.is_ok(), device.status().to_string());
  EngineOptions opt;
  opt.variant = pipeline::KernelVariant::kShared;  // the paper's best variant
  opt.streams = 2;                 // >= 2 overlaps copy with compute
  opt.batch_bytes = 64 * kKiB;     // small batches so the demo pipelines
  Result<Engine> engine = Engine::create(device.value(), patterns, opt);
  ACGPU_CHECK(engine.is_ok(), engine.status().to_string());

  Result<ScanResult> scan = engine.value().scan(text);
  ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
  const ScanResult& out = scan.value();

  std::printf("\nEngine scan of %s of magazine-like text (%u streams, %s batches):\n",
              format_bytes(text.size()).c_str(), opt.streams,
              format_bytes(opt.batch_bytes).c_str());
  std::printf("  matches=%llu (serial agrees: %s)\n",
              static_cast<unsigned long long>(out.matches.size()),
              out.matches.size() == ac::count_matches(dfa, text) ? "yes" : "NO");
  std::printf("  %llu batches, copy/compute overlap %.0f%% of the shorter engine's busy time\n",
              static_cast<unsigned long long>(out.stats.batches),
              out.stats.overlap_ratio * 100);
  std::printf("  simulated GTX 285 end-to-end: %s  ->  %s Gbps\n",
              format_seconds(out.stats.makespan_seconds).c_str(),
              format_gbps(out.stats.throughput_gbps()).c_str());
  return 0;
}
