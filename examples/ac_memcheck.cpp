// ac_memcheck — cuda-memcheck/racecheck-style hazard audit of every
// simulated kernel variant, run over the conformance oracle's seeded
// workloads:
//
//   ac_memcheck                                # all targets, 25 workloads
//   ac_memcheck --targets=ac-shared-diagonal   # one kernel variant
//   ac_memcheck --iterations 100 --seed 7      # a deeper sweep
//   ac_memcheck --json                         # machine-readable report
//   ac_memcheck --list                         # audit target names
//
// Each target runs under the gpucheck Recorder (shared races, barrier
// divergence, out-of-bounds, read-before-write, coalescing lint, bank
// statistics) with its per-target budget applied — the diagonal scheme must
// audit at conflict degree 1, the naive scheme must NOT — and its match
// output is diffed against the serial reference.
//
// Exit status: 0 when every target is hazard-free and conformant, 1 when any
// hazard or match divergence was found, 2 on bad usage.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "gpucheck/audit.h"
#include "util/arg_parser.h"
#include "util/byte_units.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace acgpu;

namespace {

std::vector<gpucheck::AuditTarget> parse_targets(const std::string& csv) {
  std::vector<gpucheck::AuditTarget> targets;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ','))
    if (!token.empty()) targets.push_back(gpucheck::audit_target_from_name(token));
  return targets;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Kernel hazard auditor: runs every simulated kernel variant under the\n"
      "access recorder over seeded conformance workloads and reports shared-\n"
      "memory races, barrier divergence, out-of-bounds and uninitialized\n"
      "accesses, coalescing lint, and bank-conflict budget breaches.\n"
      "usage: ac_memcheck [flags]");
  args.add_flag("seed", "workload generator seed", "42");
  args.add_flag("iterations", "number of generated workloads", "25");
  args.add_flag("targets", "comma-separated audit targets (empty = all)", "");
  args.add_bool_flag("json", "emit one machine-readable JSON report");
  args.add_bool_flag("list", "print audit target names and exit");
  args.add_bool_flag("quiet", "suppress the per-target hazard details");
  try {
    if (!args.parse(argc, argv)) return 0;
    if (args.get_bool("list")) {
      for (const gpucheck::AuditTarget t : gpucheck::all_audit_targets())
        std::printf("%s\n", gpucheck::to_string(t));
      return 0;
    }

    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const auto iterations = static_cast<std::uint64_t>(args.get_int("iterations"));
    const std::vector<gpucheck::AuditTarget> targets =
        parse_targets(args.get("targets"));
    const bool json = args.get_bool("json");

    if (!json)
      std::printf("memcheck: %llu workloads x %zu targets, seed %llu\n",
                  static_cast<unsigned long long>(iterations),
                  targets.empty() ? gpucheck::all_audit_targets().size()
                                  : targets.size(),
                  static_cast<unsigned long long>(seed));

    Stopwatch clock;
    const std::vector<gpucheck::SweepTargetResult> results =
        gpucheck::audit_conformance(seed, iterations, targets);

    bool failed = false;
    if (json) {
      std::ostream& out = std::cout;
      out << "{\"seed\":" << seed << ",\"iterations\":" << iterations
          << ",\"targets\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (i > 0) out << ",";
        out << "{\"target\":\"" << gpucheck::to_string(r.target)
            << "\",\"workloads\":" << r.workloads
            << ",\"mismatches\":" << r.mismatches << ",\"report\":";
        r.report.write_json(out);
        out << "}";
        failed = failed || !r.report.clean() || r.mismatches > 0;
      }
      out << "]}\n";
      return failed ? 1 : 0;
    }

    Table table;
    table.set_header({"target", "workloads", "accesses", "hazards",
                      "max bank degree", "staging excess", "mismatches"});
    for (const auto& r : results) {
      table.add_row({gpucheck::to_string(r.target), std::to_string(r.workloads),
                     std::to_string(r.report.accesses),
                     std::to_string(r.report.total_hazards()),
                     std::to_string(r.report.bank.max_degree),
                     std::to_string(r.report.coalescing.staging_excess),
                     std::to_string(r.mismatches)});
      failed = failed || !r.report.clean() || r.mismatches > 0;
    }
    table.print(std::cout);
    std::printf("(%s)\n", format_seconds(clock.seconds()).c_str());

    if (failed && !args.get_bool("quiet")) {
      for (const auto& r : results) {
        if (r.report.clean() && r.mismatches == 0) continue;
        std::printf("\n--- %s ---\n", gpucheck::to_string(r.target));
        if (r.mismatches > 0)
          std::printf("%llu workload(s) diverged from the serial reference\n",
                      static_cast<unsigned long long>(r.mismatches));
        r.report.write_text(std::cout);
      }
    }
    if (failed) {
      std::printf("\nhazards found.\n");
      return 1;
    }
    std::printf("all kernel variants audit clean.\n");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ac_memcheck: %s\n", e.what());
    return 2;
  }
}
