// A guided tour of the paper's optimization ladder on one workload:
//   serial -> global-memory-only -> shared (naive store) -> shared (diagonal)
//   -> batched multi-stream pipeline
// printing, at each rung, the metric that explains the speedup (transactions
// per request, bank-conflict cycles, texture hit rate, copy/compute overlap)
// — Section IV of the paper as a runnable program, driven entirely through
// the acgpu::Engine API.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Walks the paper's optimization ladder on one workload.");
  args.add_flag("size", "input size", "16MB");
  args.add_flag("patterns", "dictionary size", "5000");
  if (!args.parse(argc, argv)) return 0;

  const auto size = static_cast<std::size_t>(args.get_bytes("size"));
  const auto count = static_cast<std::uint32_t>(args.get_int("patterns"));

  std::printf("workload: %s magazine-like text, %u patterns extracted from it\n",
              format_bytes(size).c_str(), count);
  const std::string text = workload::make_corpus(size, 99);
  workload::ExtractConfig ec;
  ec.count = count;
  const ac::PatternSet patterns = workload::extract_patterns(text, ec);
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  std::printf("DFA: %u states, STT %s (texture memory)\n\n", dfa.state_count(),
              format_bytes(dfa.stt_bytes()).c_str());

  const auto est = cpumodel::estimate_serial(
      dfa, std::string_view(text).substr(0, std::min<std::size_t>(size, 2 * kMiB)),
      size);
  std::printf("rung 0 — serial (2.2GHz Core2 model): %s, %s Gbps "
              "(%.1f cycles/byte, L1 miss %.1f%%)\n",
              format_seconds(est.seconds).c_str(),
              format_gbps(to_gbps(size, est.seconds)).c_str(), est.cycles_per_byte,
              est.l1_miss_rate * 100);

  // Every rung goes through the Engine facade, and every rung's engine is
  // bound to the same explicit Device — one simulated GTX 285, five
  // automaton configurations. Rungs 1-3 use one stream and one whole-input
  // batch, so stats.compute_busy_seconds is exactly the kernel time the
  // paper's figures measure; rung 4 turns on the pipeline.
  DeviceOptions dopt;
  dopt.memory_bytes = 768 * kMiB;
  Result<Device> device = Device::create(dopt);
  ACGPU_CHECK(device.is_ok(), device.status().to_string());
  auto run = [&](pipeline::KernelVariant variant, kernels::StoreScheme scheme,
                 std::uint32_t streams, std::uint64_t batch_bytes) {
    EngineOptions opt;
    opt.variant = variant;
    opt.scheme = scheme;
    opt.streams = streams;
    opt.batch_bytes = batch_bytes;
    opt.mode = gpusim::SimMode::Timed;
    Result<Engine> engine = Engine::create(device.value(), ac::Dfa(dfa), opt);
    ACGPU_CHECK(engine.is_ok(), engine.status().to_string());
    Result<ScanResult> scan = engine.value().scan(text);
    ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
    return std::move(scan).value();
  };

  const auto global = run(pipeline::KernelVariant::kGlobalOnly,
                          kernels::StoreScheme::kDiagonal, 1, size);
  std::printf("\nrung 1 — global memory only: %s, %s Gbps (%.1fx vs serial)\n",
              format_seconds(global.stats.compute_busy_seconds).c_str(),
              format_gbps(to_gbps(size, global.stats.compute_busy_seconds)).c_str(),
              est.seconds / global.stats.compute_busy_seconds);
  std::printf("         why it's slow: %.1f memory transactions per warp load "
              "(byte reads at chunk stride barely coalesce)\n",
              global.metrics.avg_transactions_per_request());

  const auto naive = run(pipeline::KernelVariant::kShared,
                         kernels::StoreScheme::kCoalescedNaive, 1, size);
  std::printf("\nrung 2 — shared memory, coalesced loads, naive store: %s, %s Gbps "
              "(%.1fx vs serial)\n",
              format_seconds(naive.stats.compute_busy_seconds).c_str(),
              format_gbps(to_gbps(size, naive.stats.compute_busy_seconds)).c_str(),
              est.seconds / naive.stats.compute_busy_seconds);
  std::printf("         staging fixed coalescing (%.1f txn/request) but the "
              "matching loads hit %llu bank-conflict cycles (max degree %llu)\n",
              naive.metrics.avg_transactions_per_request(),
              static_cast<unsigned long long>(naive.metrics.shared_conflict_cycles),
              static_cast<unsigned long long>(naive.metrics.shared_max_degree));

  const auto diag = run(pipeline::KernelVariant::kShared,
                        kernels::StoreScheme::kDiagonal, 1, size);
  std::printf("\nrung 3 — shared memory, diagonal store (the paper's scheme): %s, "
              "%s Gbps (%.1fx vs serial)\n",
              format_seconds(diag.stats.compute_busy_seconds).c_str(),
              format_gbps(to_gbps(size, diag.stats.compute_busy_seconds)).c_str(),
              est.seconds / diag.stats.compute_busy_seconds);
  std::printf("         bank-conflict cycles: %llu (degree %llu); texture hit rate "
              "%.3f\n",
              static_cast<unsigned long long>(diag.metrics.shared_conflict_cycles),
              static_cast<unsigned long long>(diag.metrics.shared_max_degree),
              diag.metrics.tex_hit_rate());

  // Rung 4 measures end to end: with one stream and one whole-input batch the
  // H2D copy, the kernel, and the D2H run strictly in series (diag above);
  // with two streams and small batches the copy engine stages batch k+1 while
  // the compute engine matches batch k.
  const auto piped = run(pipeline::KernelVariant::kShared,
                         kernels::StoreScheme::kDiagonal, 2, 2 * kMiB);
  std::printf("\nrung 4 — batched multi-stream pipeline (2 streams, %s batches): "
              "%s end-to-end, %s Gbps\n",
              format_bytes(2 * kMiB).c_str(),
              format_seconds(piped.stats.makespan_seconds).c_str(),
              format_gbps(piped.stats.throughput_gbps()).c_str());
  std::printf("         vs single-buffer end-to-end (%s): %.2fx — copy/compute "
              "overlap %.0f%% across %llu batches\n",
              format_seconds(diag.stats.makespan_seconds).c_str(),
              diag.stats.makespan_seconds / piped.stats.makespan_seconds,
              piped.stats.overlap_ratio * 100,
              static_cast<unsigned long long>(piped.stats.batches));

  std::printf("\nladder summary: serial -> %.1fx -> %.1fx -> %.1fx kernel-only "
              "(store scheme alone: %.2fx, the paper's Fig 23); pipelining the "
              "copies buys another %.2fx end-to-end\n",
              est.seconds / global.stats.compute_busy_seconds,
              est.seconds / naive.stats.compute_busy_seconds,
              est.seconds / diag.stats.compute_busy_seconds,
              naive.stats.compute_busy_seconds / diag.stats.compute_busy_seconds,
              diag.stats.makespan_seconds / piped.stats.makespan_seconds);
  return 0;
}
