// A guided tour of the paper's optimization ladder on one workload:
//   serial -> global-memory-only -> shared (naive store) -> shared (diagonal)
// printing, at each rung, the metric that explains the speedup (transactions
// per request, bank-conflict cycles, texture hit rate) — Section IV of the
// paper as a runnable program.
#include <cstdio>
#include <iostream>

#include "acgpu.h"

using namespace acgpu;

int main(int argc, char** argv) {
  ArgParser args("Walks the paper's optimization ladder on one workload.");
  args.add_flag("size", "input size", "16MB");
  args.add_flag("patterns", "dictionary size", "5000");
  if (!args.parse(argc, argv)) return 0;

  const auto size = static_cast<std::size_t>(args.get_bytes("size"));
  const auto count = static_cast<std::uint32_t>(args.get_int("patterns"));

  std::printf("workload: %s magazine-like text, %u patterns extracted from it\n",
              format_bytes(size).c_str(), count);
  const std::string text = workload::make_corpus(size, 99);
  workload::ExtractConfig ec;
  ec.count = count;
  const ac::PatternSet patterns = workload::extract_patterns(text, ec);
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  std::printf("DFA: %u states, STT %s (texture memory)\n\n", dfa.state_count(),
              format_bytes(dfa.stt_bytes()).c_str());

  const auto est = cpumodel::estimate_serial(
      dfa, std::string_view(text).substr(0, std::min<std::size_t>(size, 2 * kMiB)),
      size);
  std::printf("rung 0 — serial (2.2GHz Core2 model): %s, %s Gbps "
              "(%.1f cycles/byte, L1 miss %.1f%%)\n",
              format_seconds(est.seconds).c_str(),
              format_gbps(to_gbps(size, est.seconds)).c_str(), est.cycles_per_byte,
              est.l1_miss_rate * 100);

  const gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
  gpusim::DeviceMemory device(768 * kMiB);
  const kernels::DeviceDfa device_dfa(device, dfa);
  const gpusim::DevAddr text_addr = kernels::upload_text(device, text);

  kernels::AcLaunchSpec spec;
  spec.sim.mode = gpusim::SimMode::Timed;

  auto run = [&](kernels::Approach approach, kernels::StoreScheme scheme) {
    spec.approach = approach;
    spec.scheme = scheme;
    const std::size_t mark = device.mark();
    const auto out =
        kernels::run_ac_kernel(gpu, device, device_dfa, text_addr, size, spec);
    device.release(mark);
    return out;
  };

  const auto global = run(kernels::Approach::kGlobalOnly,
                          kernels::StoreScheme::kDiagonal);
  std::printf("\nrung 1 — global memory only: %s, %s Gbps (%.1fx vs serial)\n",
              format_seconds(global.sim.seconds).c_str(),
              format_gbps(to_gbps(size, global.sim.seconds)).c_str(),
              est.seconds / global.sim.seconds);
  std::printf("         why it's slow: %.1f memory transactions per warp load "
              "(byte reads at chunk stride barely coalesce)\n",
              global.sim.metrics.avg_transactions_per_request());

  const auto naive = run(kernels::Approach::kShared,
                         kernels::StoreScheme::kCoalescedNaive);
  std::printf("\nrung 2 — shared memory, coalesced loads, naive store: %s, %s Gbps "
              "(%.1fx vs serial)\n",
              format_seconds(naive.sim.seconds).c_str(),
              format_gbps(to_gbps(size, naive.sim.seconds)).c_str(),
              est.seconds / naive.sim.seconds);
  std::printf("         staging fixed coalescing (%.1f txn/request) but the "
              "matching loads hit %llu bank-conflict cycles (max degree %llu)\n",
              naive.sim.metrics.avg_transactions_per_request(),
              static_cast<unsigned long long>(naive.sim.metrics.shared_conflict_cycles),
              static_cast<unsigned long long>(naive.sim.metrics.shared_max_degree));

  const auto diag = run(kernels::Approach::kShared, kernels::StoreScheme::kDiagonal);
  std::printf("\nrung 3 — shared memory, diagonal store (the paper's scheme): %s, "
              "%s Gbps (%.1fx vs serial)\n",
              format_seconds(diag.sim.seconds).c_str(),
              format_gbps(to_gbps(size, diag.sim.seconds)).c_str(),
              est.seconds / diag.sim.seconds);
  std::printf("         bank-conflict cycles: %llu (degree %llu); texture hit rate "
              "%.3f\n",
              static_cast<unsigned long long>(diag.sim.metrics.shared_conflict_cycles),
              static_cast<unsigned long long>(diag.sim.metrics.shared_max_degree),
              diag.sim.metrics.tex_hit_rate());

  std::printf("\nladder summary: serial -> %.1fx -> %.1fx -> %.1fx "
              "(store scheme alone: %.2fx, the paper's Fig 23)\n",
              est.seconds / global.sim.seconds, est.seconds / naive.sim.seconds,
              est.seconds / diag.sim.seconds, naive.sim.seconds / diag.sim.seconds);
  return 0;
}
