// acgpu_cli — a small production-style frontend for the library:
//
//   acgpu_cli compile --patterns=words.txt --out=dict.acdfa
//   acgpu_cli scan    --dict=dict.acdfa file1 file2 ...
//   acgpu_cli scan    --patterns=words.txt --matcher=gpu file.txt
//
// Compiles dictionaries to the binary DFA format (ac/dfa.h), scans files
// with any of the matchers (serial / parallel / compressed / simulated-GPU),
// and prints per-file match statistics.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "acgpu.h"

using namespace acgpu;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ACGPU_CHECK(static_cast<bool>(in), "cannot open '" << path << "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ac::PatternSet load_patterns(const std::string& path) {
  // One pattern per line; blank lines and '#' comments ignored.
  std::istringstream in(read_file(path));
  std::vector<std::string> patterns;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    patterns.push_back(line);
  }
  ACGPU_CHECK(!patterns.empty(), "no patterns in '" << path << "'");
  return ac::PatternSet(std::move(patterns));
}

ac::Dfa resolve_dfa(const ArgParser& args) {
  const std::string dict = args.get("dict");
  if (!dict.empty()) {
    std::ifstream in(dict, std::ios::binary);
    ACGPU_CHECK(static_cast<bool>(in), "cannot open dictionary '" << dict << "'");
    return ac::Dfa::load(in);
  }
  const std::string patterns = args.get("patterns");
  ACGPU_CHECK(!patterns.empty(), "need --dict=<file> or --patterns=<file>");
  return ac::build_dfa(load_patterns(patterns), /*pad_pitch_to=*/8);
}

int cmd_compile(const ArgParser& args) {
  const ac::Dfa dfa = ac::build_dfa(load_patterns(args.get("patterns")), 8);
  const std::string out_path = args.get("out");
  ACGPU_CHECK(!out_path.empty(), "compile needs --out=<file>");
  std::ofstream out(out_path, std::ios::binary);
  ACGPU_CHECK(static_cast<bool>(out), "cannot write '" << out_path << "'");
  dfa.save(out);
  std::printf("compiled %zu patterns -> %u states, %s STT -> %s\n",
              dfa.pattern_count(), dfa.state_count(),
              format_bytes(dfa.stt_bytes()).c_str(), out_path.c_str());
  return 0;
}

int cmd_scan(const ArgParser& args, const std::vector<std::string>& files) {
  ac::Dfa dfa = resolve_dfa(args);
  const std::string matcher = args.get("matcher");
  const bool quiet = args.get_bool("count-only");

  // Telemetry sinks (gpu matcher only): --trace accumulates every file's
  // simulated timeline (plus the host spans) into one Chrome trace; --stats
  // prints the metrics snapshot after the scans.
  const std::string trace_path = args.get("trace");
  const bool want_stats = args.get_bool("stats");
  const bool want_telemetry = !trace_path.empty() || want_stats;
  ACGPU_CHECK(!want_telemetry || matcher == "gpu",
              "--trace/--stats need --matcher=gpu");
  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer;
  telemetry::ChromeTrace chrome;

  // --chunk-bytes=N streams each file through the session service in N-byte
  // feeds instead of one resident scan; matches are identical either way
  // (the serve conformance suite enforces it). Trace export is per-scan and
  // has no streaming analogue, so the two flags are mutually exclusive.
  const std::uint64_t chunk_bytes =
      static_cast<std::uint64_t>(args.get_bytes("chunk-bytes"));
  ACGPU_CHECK(chunk_bytes == 0 || matcher == "gpu",
              "--chunk-bytes needs --matcher=gpu");
  ACGPU_CHECK(chunk_bytes == 0 || trace_path.empty(),
              "--chunk-bytes streams through the session service; "
              "--trace only applies to one-shot scans");

  // The gpu path goes through acgpu::Engine on an explicit Device — built
  // once, scanning every file through the batched multi-stream pipeline.
  // With --chunk-bytes the Engine is owned by a StreamService that carries
  // DFA state across feeds.
  std::optional<Device> device;
  std::optional<Engine> engine;
  std::optional<serve::StreamService> service;
  if (matcher == "gpu") {
    EngineOptions opt;
    opt.streams = static_cast<std::uint32_t>(args.get_int("streams"));
    opt.batch_bytes = static_cast<std::uint64_t>(args.get_bytes("batch"));
    opt.match_capacity = 128;
    if (want_telemetry) {
      opt.telemetry.metrics = &registry;
      opt.telemetry.tracer = &tracer;
    }
    if (chunk_bytes > 0) {
      serve::ServeOptions sopt;
      sopt.engine = opt;
      sopt.admission = serve::AdmissionPolicy::kAutoFlush;
      if (want_stats) sopt.metrics = &registry;
      Result<serve::StreamService> created =
          serve::StreamService::create(ac::Dfa(dfa), sopt);
      ACGPU_CHECK(created.is_ok(), created.status().to_string());
      service.emplace(std::move(created).value());
    } else {
      Result<Device> dev = Device::create();
      ACGPU_CHECK(dev.is_ok(), dev.status().to_string());
      device.emplace(std::move(dev).value());
      Result<Engine> created = Engine::create(*device, ac::Dfa(dfa), opt);
      ACGPU_CHECK(created.is_ok(), created.status().to_string());
      engine.emplace(std::move(created).value());
    }
  }

  Table table;
  table.set_header({"file", "bytes", "matches", "time", "MB/s"});
  for (const std::string& path : files) {
    const std::string text = read_file(path);
    Stopwatch clock;
    std::uint64_t count = 0;
    std::vector<ac::Match> matches;
    if (matcher == "serial") {
      count = ac::count_matches(dfa, text);
    } else if (matcher == "parallel") {
      count = ac::count_matches_parallel(dfa, text);
    } else if (matcher == "compressed") {
      const ac::CompressedStt c(dfa);
      clock.restart();  // exclude compression from the scan time
      ac::CountSink sink;
      ac::match_compressed(c, dfa, text, sink);
      count = sink.count();
    } else if (matcher == "gpu" && service.has_value()) {
      // One session per file: feed --chunk-bytes slices, drain, poll. The
      // session's boundary continuation makes the chunking invisible.
      Result<serve::SessionId> session = service->open();
      ACGPU_CHECK(session.is_ok(), session.status().to_string());
      for (std::size_t pos = 0; pos < text.size(); pos += chunk_bytes) {
        const Status fed = service->feed(
            session.value(), std::string_view(text).substr(pos, chunk_bytes));
        ACGPU_CHECK(fed.is_ok(), fed.to_string());
      }
      ACGPU_CHECK(service->drain().is_ok(), "drain failed");
      Result<std::vector<ac::Match>> polled = service->poll(session.value());
      ACGPU_CHECK(polled.is_ok(), polled.status().to_string());
      matches = std::move(polled).value();
      ac::normalize_matches(matches);  // discovery order -> one-shot order
      count = matches.size();
      ACGPU_CHECK(service->close(session.value()).is_ok(), "close failed");
    } else if (matcher == "gpu") {
      Result<ScanResult> scan = engine->scan(text);
      ACGPU_CHECK(scan.is_ok(), scan.status().to_string());
      ACGPU_CHECK(!scan.value().overflowed,
                  "match buffer overflowed; re-run with a CPU matcher");
      count = scan.value().matches.size();
      if (!trace_path.empty()) {
        // One Chrome process per file so sequential scans don't overprint.
        pipeline::TraceExportOptions texport;
        texport.process_name = "device: " + path;
        pipeline::add_scan_to_trace(chrome, scan.value(), texport);
      }
      matches = std::move(scan.value().matches);
    } else {
      ACGPU_CHECK(false, "unknown --matcher '" << matcher
                             << "' (serial|parallel|compressed|gpu)");
    }
    const double seconds = clock.seconds();
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f",
                  static_cast<double>(text.size()) / seconds / 1e6);
    table.add_row({path, format_bytes(text.size()), std::to_string(count),
                   format_seconds(seconds), rate});
    if (!quiet && matcher == "gpu") {
      for (const ac::Match& m : matches) {
        if (&m - matches.data() >= 10) {
          std::printf("  ... (%zu more)\n", matches.size() - 10);
          break;
        }
        const std::uint32_t len = dfa.pattern_length(m.pattern);
        std::printf("  %s:%llu: pattern %d (len %u)\n", path.c_str(),
                    static_cast<unsigned long long>(m.end + 1 - len), m.pattern, len);
      }
    }
  }
  table.print(std::cout);
  if (!trace_path.empty()) {
    chrome.add_tracer(tracer);
    std::ofstream out(trace_path);
    ACGPU_CHECK(static_cast<bool>(out), "cannot write '" << trace_path << "'");
    chrome.write(out);
    std::printf("wrote %s (open in Perfetto or chrome://tracing)\n",
                trace_path.c_str());
  }
  if (want_stats) registry.snapshot().write_table(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "acgpu command line: compile dictionaries, scan files.\n"
      "usage: acgpu_cli <compile|scan|selftest> [flags] [files...]");
  args.add_flag("patterns", "pattern file (one per line, # comments)", "");
  args.add_flag("dict", "compiled dictionary (.acdfa) to load", "");
  args.add_flag("out", "output path for compile", "");
  args.add_flag("matcher", "scan engine: serial|parallel|compressed|gpu", "serial");
  args.add_flag("streams", "gpu matcher: pipeline streams (>= 2 overlaps)", "2");
  args.add_flag("batch", "gpu matcher: owned bytes per pipeline batch", "4MB");
  args.add_flag("chunk-bytes",
                "gpu matcher: stream each file through the session service "
                "in feeds of this size (0 = one-shot scan)", "0");
  args.add_flag("trace", "gpu matcher: write a Chrome trace of the scans here", "");
  args.add_bool_flag("stats", "gpu matcher: print the telemetry metrics table");
  args.add_bool_flag("count-only", "suppress per-match output");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto& pos = args.positional();
    ACGPU_CHECK(!pos.empty(), "missing command (compile|scan|selftest)");
    const std::string cmd = pos.front();
    if (cmd == "compile") return cmd_compile(args);
    if (cmd == "scan") {
      ACGPU_CHECK(pos.size() > 1, "scan needs at least one file");
      return cmd_scan(args, {pos.begin() + 1, pos.end()});
    }
    if (cmd == "selftest") {
      // Tiny end-to-end check usable in the field.
      const ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"he", "she", "his", "hers"}));
      const auto matches = ac::find_all(dfa, "ushers");
      ACGPU_CHECK(matches.size() == 3, "selftest failed: got " << matches.size());
      std::puts("selftest ok");
      return 0;
    }
    ACGPU_CHECK(false, "unknown command '" << cmd << "'");
  } catch (const Error& e) {
    std::fprintf(stderr, "acgpu_cli: %s\n", e.what());
    return 2;
  }
  return 0;
}
